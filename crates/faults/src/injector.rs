//! Runtime fault injectors, split along the pipeline's thread boundaries.
//!
//! The threaded testbed consumes faults from three places: the **air**
//! (corruption, truncation, duplication, reordering, burst loss), the
//! **receiver** (stale-key decryption) and the **producer** (bounded-queue
//! overflow). Each half owns the RNG streams of exactly the sites it
//! applies, so every stream is consumed by one thread in arrival order and
//! a run is bit-reproducible from `(seed, plan)`.
//!
//! All injectors are draw-free when their sites are unarmed: an empty
//! [`FaultPlan`] makes every method the identity without touching an RNG,
//! which is what makes the empty-plan pipeline byte-identical to the
//! un-instrumented path.

use crate::plan::{
    BurstLossFault, CorruptionFault, DuplicationFault, FaultPlan, QueueOverflowFault, Region,
    ReorderingFault, StaleKeyFault, TruncationFault,
};
use crate::rng::{site_rng, FaultSite};
use rand::rngs::StdRng;
use rand::Rng;

/// Plain counts of what the injectors did, mergeable across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets with at least one flipped bit.
    pub corrupted: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Packets with their tail cut off.
    pub truncated: u64,
    /// Packets released from the shuffle buffer out of arrival order.
    pub reordered: u64,
    /// Packets swallowed by a burst-loss episode.
    pub burst_lost: u64,
    /// Frames dropped at the bounded queue (producer outpaced encryptor).
    pub queue_dropped: u64,
    /// Marked packets decrypted with the stale key.
    pub stale_key_hits: u64,
}

impl FaultStats {
    /// Sum another half's counts into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.corrupted += other.corrupted;
        self.duplicated += other.duplicated;
        self.truncated += other.truncated;
        self.reordered += other.reordered;
        self.burst_lost += other.burst_lost;
        self.queue_dropped += other.queue_dropped;
        self.stale_key_hits += other.stale_key_hits;
    }

    /// Total number of fault events.
    pub fn total(&self) -> u64 {
        self.corrupted
            + self.duplicated
            + self.truncated
            + self.reordered
            + self.burst_lost
            + self.queue_dropped
            + self.stale_key_hits
    }
}

struct BurstState {
    cfg: BurstLossFault,
    rng: StdRng,
    in_burst: bool,
}

struct ReorderState {
    cfg: ReorderingFault,
    rng: StdRng,
    /// `(arrival_sequence, packet)` so out-of-order releases are countable.
    buffer: Vec<(u64, Vec<u8>)>,
    next_arrival: u64,
    next_release: u64,
}

/// Air-side injector: everything that happens to bytes in flight.
///
/// Apply order per packet: burst loss (the packet may vanish entirely),
/// then corruption, truncation and duplication of the surviving bytes,
/// then the reordering shuffle buffer. Call
/// [`drain`](PacketInjector::drain) after the last packet to flush the
/// buffer.
pub struct PacketInjector {
    corruption: Option<(CorruptionFault, StdRng)>,
    duplication: Option<(DuplicationFault, StdRng)>,
    truncation: Option<(TruncationFault, StdRng)>,
    reorder: Option<ReorderState>,
    burst: Option<BurstState>,
    header_len: usize,
    stats: FaultStats,
    c_corrupted: thrifty_telemetry::Counter,
    c_duplicated: thrifty_telemetry::Counter,
    c_truncated: thrifty_telemetry::Counter,
    c_reordered: thrifty_telemetry::Counter,
    c_burst_lost: thrifty_telemetry::Counter,
}

impl PacketInjector {
    /// Build the air half from a plan.
    ///
    /// `header_len` is the wire-format header length the corruption
    /// [`Region`] boundary refers to (e.g. `RTP_HEADER_LEN`).
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`] — validate first when the
    /// plan comes from untrusted input.
    pub fn new(
        plan: &FaultPlan,
        header_len: usize,
        metrics: &thrifty_telemetry::MetricsRegistry,
    ) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        PacketInjector {
            corruption: plan
                .corruption
                .map(|c| (c, site_rng(plan.seed, FaultSite::Corruption))),
            duplication: plan
                .duplication
                .map(|d| (d, site_rng(plan.seed, FaultSite::Duplication))),
            truncation: plan
                .truncation
                .map(|t| (t, site_rng(plan.seed, FaultSite::Truncation))),
            reorder: plan.reordering.map(|cfg| ReorderState {
                cfg,
                rng: site_rng(plan.seed, FaultSite::Reordering),
                buffer: Vec::with_capacity(cfg.window + 1),
                next_arrival: 0,
                next_release: 0,
            }),
            burst: plan.burst_loss.map(|cfg| BurstState {
                cfg,
                rng: site_rng(plan.seed, FaultSite::BurstLoss),
                in_burst: false,
            }),
            header_len,
            stats: FaultStats::default(),
            c_corrupted: metrics.counter("faults.corrupted"),
            c_duplicated: metrics.counter("faults.duplicated"),
            c_truncated: metrics.counter("faults.truncated"),
            c_reordered: metrics.counter("faults.reordered"),
            c_burst_lost: metrics.counter("faults.burst_lost"),
        }
    }

    /// True when no air-side site is armed: `on_packet` is then the
    /// identity and consumes no randomness.
    pub fn is_passthrough(&self) -> bool {
        self.corruption.is_none()
            && self.duplication.is_none()
            && self.truncation.is_none()
            && self.reorder.is_none()
            && self.burst.is_none()
    }

    /// Counts so far (the reorder buffer may still hold packets).
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn corrupt(&mut self, pkt: &mut [u8]) -> bool {
        let Some((cfg, rng)) = &mut self.corruption else {
            return false;
        };
        if !rng.gen_bool(cfg.probability) {
            return false;
        }
        let (lo, hi) = match cfg.region {
            Region::Header => (0, self.header_len.min(pkt.len())),
            Region::Payload => (self.header_len.min(pkt.len()), pkt.len()),
            Region::Anywhere => (0, pkt.len()),
        };
        if lo >= hi {
            return false; // region empty on this packet; nothing to flip
        }
        let flips = rng.gen_range(1..=cfg.max_bit_flips);
        for _ in 0..flips {
            let byte = rng.gen_range(lo..hi);
            let bit = rng.gen_range(0u32..8);
            pkt[byte] ^= 1 << bit;
        }
        true
    }

    fn truncate(&mut self, pkt: &mut Vec<u8>) -> bool {
        let Some((cfg, rng)) = &mut self.truncation else {
            return false;
        };
        if !rng.gen_bool(cfg.probability) {
            return false;
        }
        if pkt.len() <= cfg.min_keep {
            return false; // already shorter than the floor; leave it
        }
        let keep = rng.gen_range(cfg.min_keep..pkt.len());
        pkt.truncate(keep);
        true
    }

    fn duplicate(&mut self) -> bool {
        match &mut self.duplication {
            Some((cfg, rng)) => rng.gen_bool(cfg.probability),
            None => false,
        }
    }

    fn burst_swallows(&mut self) -> bool {
        let Some(b) = &mut self.burst else {
            return false;
        };
        // Transition first, then a loss draw in the (possibly new) state.
        let flip = if b.in_burst { b.cfg.p_exit } else { b.cfg.p_enter };
        if b.rng.gen_bool(flip) {
            b.in_burst = !b.in_burst;
        }
        b.in_burst && b.rng.gen_bool(b.cfg.loss_in_burst)
    }

    fn reorder_push(&mut self, pkt: Vec<u8>, released: &mut Vec<Vec<u8>>) {
        let Some(r) = &mut self.reorder else {
            released.push(pkt);
            return;
        };
        r.buffer.push((r.next_arrival, pkt));
        r.next_arrival += 1;
        if r.buffer.len() > r.cfg.window {
            let idx = r.rng.gen_range(0..r.buffer.len());
            let (arrival, pkt) = r.buffer.swap_remove(idx);
            if arrival != r.next_release {
                self.stats.reordered += 1;
                self.c_reordered.inc();
            }
            r.next_release = r.next_release.max(arrival + 1);
            released.push(pkt);
        }
    }

    /// Pass one packet through every armed air-side site.
    ///
    /// Returns the packets released downstream **now**: possibly none (the
    /// packet was swallowed or parked in the shuffle buffer), possibly
    /// several (a duplicate, or a shuffle release on top of the new
    /// arrival). With no site armed this is exactly `vec![pkt]`.
    pub fn on_packet(&mut self, mut pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut released = Vec::with_capacity(1);
        if self.burst_swallows() {
            self.stats.burst_lost += 1;
            self.c_burst_lost.inc();
            return released;
        }
        if self.corrupt(&mut pkt) {
            self.stats.corrupted += 1;
            self.c_corrupted.inc();
        }
        if self.truncate(&mut pkt) {
            self.stats.truncated += 1;
            self.c_truncated.inc();
        }
        let duplicate = self.duplicate();
        if duplicate {
            self.stats.duplicated += 1;
            self.c_duplicated.inc();
            self.reorder_push(pkt.clone(), &mut released);
        }
        self.reorder_push(pkt, &mut released);
        released
    }

    /// Flush the reordering shuffle buffer after the last packet.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        let mut released = Vec::new();
        let Some(r) = &mut self.reorder else {
            return released;
        };
        while !r.buffer.is_empty() {
            let idx = r.rng.gen_range(0..r.buffer.len());
            let (arrival, pkt) = r.buffer.swap_remove(idx);
            if arrival != r.next_release {
                self.stats.reordered += 1;
                self.c_reordered.inc();
            }
            r.next_release = r.next_release.max(arrival + 1);
            released.push(pkt);
        }
        released
    }
}

/// Receiver-side injector: stale/mismatched-key decryption.
pub struct ReceiverFaults {
    stale: Option<(StaleKeyFault, StdRng)>,
    stats: FaultStats,
    c_stale: thrifty_telemetry::Counter,
}

impl ReceiverFaults {
    /// Build the receiver half from a plan.
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`].
    pub fn new(plan: &FaultPlan, metrics: &thrifty_telemetry::MetricsRegistry) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        ReceiverFaults {
            stale: plan
                .stale_key
                .map(|s| (s, site_rng(plan.seed, FaultSite::StaleKey))),
            stats: FaultStats::default(),
            c_stale: metrics.counter("faults.stale_key_hits"),
        }
    }

    /// Decide whether the next marked packet is decrypted with the stale
    /// key. Draw-free (always `false`) when the site is unarmed.
    pub fn stale_hit(&mut self) -> bool {
        let Some((cfg, rng)) = &mut self.stale else {
            return false;
        };
        let hit = rng.gen_bool(cfg.probability);
        if hit {
            self.stats.stale_key_hits += 1;
            self.c_stale.inc();
        }
        hit
    }

    /// Counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Producer-side injector: bounded-queue overflow.
pub struct QueueFaults {
    cfg: Option<(QueueOverflowFault, StdRng)>,
    occupancy: usize,
    stats: FaultStats,
    c_dropped: thrifty_telemetry::Counter,
}

impl QueueFaults {
    /// Build the producer half from a plan.
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`].
    pub fn new(plan: &FaultPlan, metrics: &thrifty_telemetry::MetricsRegistry) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        QueueFaults {
            cfg: plan
                .queue_overflow
                .map(|q| (q, site_rng(plan.seed, FaultSite::QueueOverflow))),
            occupancy: 0,
            stats: FaultStats::default(),
            c_dropped: metrics.counter("faults.queue_dropped"),
        }
    }

    /// Decide whether the next produced frame is admitted to the queue.
    ///
    /// Models producer-outpaces-encryptor deterministically: the simulated
    /// encryptor drains one slot with `drain_prob` per produced frame, and
    /// a frame arriving at a full queue is dropped. Always `true` (and
    /// draw-free) when the site is unarmed.
    pub fn admit(&mut self) -> bool {
        let Some((cfg, rng)) = &mut self.cfg else {
            return true;
        };
        if self.occupancy > 0 && rng.gen_bool(cfg.drain_prob) {
            self.occupancy -= 1;
        }
        if self.occupancy >= cfg.capacity {
            self.stats.queue_dropped += 1;
            self.c_dropped.inc();
            return false;
        }
        self.occupancy += 1;
        true
    }

    /// Counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_telemetry::MetricsRegistry;

    fn pkt(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn empty_plan_is_the_identity() {
        let metrics = MetricsRegistry::disabled();
        let mut inj = PacketInjector::new(&FaultPlan::none(1), 12, &metrics);
        assert!(inj.is_passthrough());
        for n in [0usize, 1, 12, 1500] {
            let out = inj.on_packet(pkt(n));
            assert_eq!(out, vec![pkt(n)]);
        }
        assert!(inj.drain().is_empty());
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn corruption_respects_the_region() {
        let metrics = MetricsRegistry::disabled();
        // A single guaranteed flip per packet: never self-cancelling, so
        // the mangled region is provably different on every packet.
        let plan = FaultPlan::none(3).with_corruption(1.0, Region::Payload, 1);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        for _ in 0..50 {
            let original = pkt(100);
            let out = inj.on_packet(original.clone());
            assert_eq!(out.len(), 1);
            assert_eq!(&out[0][..12], &original[..12], "header must stay intact");
            assert_ne!(&out[0][12..], &original[12..], "payload must be mangled");
        }
        assert_eq!(inj.stats().corrupted, 50);

        let plan = FaultPlan::none(3).with_corruption(1.0, Region::Header, 1);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        for _ in 0..50 {
            let original = pkt(100);
            let out = inj.on_packet(original.clone());
            assert_eq!(&out[0][12..], &original[12..], "payload must stay intact");
            assert_ne!(&out[0][..12], &original[..12], "header must be mangled");
        }
    }

    #[test]
    fn truncation_keeps_at_least_min_keep() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(5).with_truncation(1.0, 8);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        for _ in 0..100 {
            let out = inj.on_packet(pkt(200));
            assert_eq!(out.len(), 1);
            assert!(out[0].len() >= 8 && out[0].len() < 200, "{}", out[0].len());
        }
        // Packets at or below the floor are left alone.
        let out = inj.on_packet(pkt(8));
        assert_eq!(out[0].len(), 8);
    }

    #[test]
    fn duplication_doubles_packets() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(9).with_duplication(1.0);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        let out = inj.on_packet(pkt(40));
        assert_eq!(out, vec![pkt(40), pkt(40)]);
        assert_eq!(inj.stats().duplicated, 1);
    }

    #[test]
    fn reordering_permutes_but_conserves_packets() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(11).with_reordering(8);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        let mut released: Vec<Vec<u8>> = Vec::new();
        let sent: Vec<Vec<u8>> = (0..100).map(|i| vec![i as u8; 16]).collect();
        for p in &sent {
            released.extend(inj.on_packet(p.clone()));
        }
        released.extend(inj.drain());
        assert_eq!(released.len(), sent.len(), "no packet may vanish");
        assert_ne!(released, sent, "a window of 8 must actually reorder");
        let mut a = released.clone();
        let mut b = sent.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "released multiset equals sent multiset");
        assert!(inj.stats().reordered > 0);
    }

    #[test]
    fn burst_loss_swallows_runs_of_packets() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(13).with_burst_loss(0.05, 0.2, 1.0);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        let n = 20_000;
        let mut survived = 0usize;
        let mut loss_runs: Vec<usize> = Vec::new();
        let mut run = 0usize;
        for _ in 0..n {
            if inj.on_packet(pkt(16)).is_empty() {
                run += 1;
            } else {
                survived += 1;
                if run > 0 {
                    loss_runs.push(run);
                    run = 0;
                }
            }
        }
        let cfg = plan.burst_loss.expect("armed");
        let expect = cfg.survival_rate();
        let got = survived as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "survival {got} vs {expect}");
        let mean_run = loss_runs.iter().sum::<usize>() as f64 / loss_runs.len() as f64;
        assert!(mean_run > 1.5, "losses must be bursty, mean run {mean_run}");
    }

    #[test]
    fn injector_is_bit_reproducible() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(77)
            .with_corruption(0.3, Region::Anywhere, 8)
            .with_truncation(0.2, 4)
            .with_duplication(0.1)
            .with_reordering(4)
            .with_burst_loss(0.05, 0.3, 0.8);
        let run = || {
            let mut inj = PacketInjector::new(&plan, 12, &metrics);
            let mut out: Vec<Vec<u8>> = Vec::new();
            for i in 0..500 {
                out.extend(inj.on_packet(pkt(20 + i % 64)));
            }
            out.extend(inj.drain());
            (out, inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn arming_one_site_does_not_perturb_another() {
        // Corruption draws with and without duplication armed must be
        // identical: per-site streams are independent.
        let metrics = MetricsRegistry::disabled();
        let just_corrupt = FaultPlan::none(21).with_corruption(0.5, Region::Anywhere, 2);
        let both = just_corrupt.with_duplication(0.5);
        let corrupt_pattern = |plan: &FaultPlan| {
            let mut inj = PacketInjector::new(plan, 12, &metrics);
            (0..200)
                .map(|_| inj.on_packet(pkt(32)))
                .map(|v| v.first().cloned())
                .collect::<Vec<_>>()
        };
        let a: Vec<Vec<u8>> = corrupt_pattern(&just_corrupt).into_iter().flatten().collect();
        let b: Vec<Vec<u8>> = corrupt_pattern(&both)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(a, b, "duplication must not shift the corruption stream");
    }

    #[test]
    fn queue_faults_drop_when_producer_outpaces() {
        let metrics = MetricsRegistry::disabled();
        // Capacity 4, encryptor drains only 30% of the time → overflow.
        let plan = FaultPlan::none(31).with_queue_overflow(4, 0.3);
        let mut q = QueueFaults::new(&plan, &metrics);
        let admitted = (0..1000).filter(|_| q.admit()).count();
        assert!(admitted < 1000, "a saturated queue must drop");
        assert_eq!(q.stats().queue_dropped, 1000 - admitted as u64);
        // Fast drain → everything admitted.
        let plan = FaultPlan::none(31).with_queue_overflow(64, 1.0);
        let mut q = QueueFaults::new(&plan, &metrics);
        assert_eq!((0..1000).filter(|_| q.admit()).count(), 1000);
    }

    #[test]
    fn receiver_faults_hit_at_the_configured_rate() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(41).with_stale_key(0.25);
        let mut r = ReceiverFaults::new(&plan, &metrics);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.stale_hit()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!(r.stats().stale_key_hits, hits as u64);
        // Unarmed: never hits, no draws.
        let mut r = ReceiverFaults::new(&FaultPlan::none(41), &metrics);
        assert!((0..100).all(|_| !r.stale_hit()));
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let metrics = MetricsRegistry::enabled();
        let plan = FaultPlan::none(51)
            .with_corruption(0.5, Region::Anywhere, 2)
            .with_duplication(0.2)
            .with_truncation(0.3, 2);
        let mut inj = PacketInjector::new(&plan, 12, &metrics);
        for _ in 0..300 {
            inj.on_packet(pkt(64));
        }
        let stats = inj.stats();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("faults.corrupted"), stats.corrupted);
        assert_eq!(snap.counter("faults.duplicated"), stats.duplicated);
        assert_eq!(snap.counter("faults.truncated"), stats.truncated);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_plan_panics_descriptively() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(0).with_corruption(2.0, Region::Header, 1);
        let _ = PacketInjector::new(&plan, 12, &metrics);
    }

    #[test]
    fn stats_merge_and_total() {
        let mut a = FaultStats {
            corrupted: 1,
            duplicated: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            truncated: 3,
            stale_key_hits: 4,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert_eq!(a.truncated, 3);
    }
}
