//! [`FaultyChannel`] — a [`LossChannel`] wrapper with byte mangling.
//!
//! Layers the plan's burst-loss episodes on top of any inner channel
//! (Bernoulli or Gilbert–Elliott) and carries the air-side
//! [`PacketInjector`] as a **byte-mangling hook** for wire formats:
//! transports that move real bytes (the RTP pipeline, the TCP fault
//! matrix) pass every emitted packet through [`mangle`], and what comes
//! out is what a hostile WLAN would deliver.
//!
//! Two RNG disciplines meet here deliberately: the inner channel draws
//! from the **caller's** RNG (preserving the seeded experiment's draw
//! sequence exactly — an unarmed `FaultyChannel` is transparent), while
//! the overlay and the mangler draw only from their **own** per-site
//! streams, so arming a fault never perturbs the underlying channel.

use crate::injector::{FaultStats, PacketInjector};
use crate::plan::{BurstLossFault, FaultPlan};
use crate::rng::{site_rng, FaultSite};
use rand::rngs::StdRng;
use rand::Rng;
use thrifty_net::LossChannel;

/// A [`LossChannel`] with deterministic fault overlay and byte mangling.
pub struct FaultyChannel<C: LossChannel> {
    inner: C,
    burst: Option<(BurstLossFault, StdRng, bool)>,
    burst_lost_count: u64,
    injector: PacketInjector,
}

impl<C: LossChannel> FaultyChannel<C> {
    /// Wrap `inner` under `plan`. `header_len` bounds the corruption
    /// regions of the mangling hook (e.g. `RTP_HEADER_LEN`, or the TCP
    /// header length for segment streams).
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`] — validate first when the
    /// plan comes from untrusted input.
    pub fn new(
        inner: C,
        plan: &FaultPlan,
        header_len: usize,
        metrics: &thrifty_telemetry::MetricsRegistry,
    ) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        // The injector handles everything except burst loss, which belongs
        // to transmit() so it composes with the inner channel's verdict.
        let mangler_plan = FaultPlan {
            burst_loss: None,
            ..*plan
        };
        FaultyChannel {
            inner,
            burst: plan
                .burst_loss
                .map(|b| (b, site_rng(plan.seed, FaultSite::BurstLoss), false)),
            burst_lost_count: 0,
            injector: PacketInjector::new(&mangler_plan, header_len, metrics),
        }
    }

    /// The wrapped channel.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Byte-mangling hook: corruption, truncation, duplication and
    /// reordering applied to one wire packet. Returns the packets released
    /// downstream now (see [`PacketInjector::on_packet`]).
    pub fn mangle(&mut self, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        self.injector.on_packet(pkt)
    }

    /// Flush the mangler's reordering buffer after the last packet.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        self.injector.drain()
    }

    /// Combined counts from the overlay and the mangling hook.
    pub fn stats(&self) -> FaultStats {
        let mut s = self.injector.stats();
        s.burst_lost += self.burst_lost_count;
        s
    }
}

impl<C: LossChannel> LossChannel for FaultyChannel<C> {
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        // Inner channel first, from the caller's stream (transparency).
        let survives_inner = self.inner.transmit(rng);
        // Overlay second, from its own stream — advanced on *every* packet
        // so the episode process is independent of the inner loss pattern.
        let swallowed = match &mut self.burst {
            None => false,
            Some((cfg, site, in_burst)) => {
                let flip = if *in_burst { cfg.p_exit } else { cfg.p_enter };
                if site.gen_bool(flip) {
                    *in_burst = !*in_burst;
                }
                *in_burst && site.gen_bool(cfg.loss_in_burst)
            }
        };
        if swallowed {
            self.burst_lost_count += 1;
        }
        survives_inner && !swallowed
    }

    fn success_rate(&self) -> f64 {
        let overlay = self
            .burst
            .as_ref()
            .map_or(1.0, |(cfg, _, _)| cfg.survival_rate());
        self.inner.success_rate() * overlay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use thrifty_net::{BernoulliChannel, GilbertElliottChannel};
    use thrifty_telemetry::MetricsRegistry;

    #[test]
    fn unarmed_channel_is_transparent() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(1);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut bare = BernoulliChannel::new(0.8);
        let mut wrapped = FaultyChannel::new(BernoulliChannel::new(0.8), &plan, 12, &metrics);
        let a: Vec<bool> = (0..5_000).map(|_| bare.transmit(&mut rng_a)).collect();
        let b: Vec<bool> = (0..5_000).map(|_| wrapped.transmit(&mut rng_b)).collect();
        assert_eq!(a, b, "an empty plan must not perturb the inner channel");
        assert_eq!(wrapped.success_rate(), 0.8);
        let pkt = vec![7u8; 64];
        assert_eq!(wrapped.mangle(pkt.clone()), vec![pkt]);
    }

    #[test]
    fn burst_overlay_lowers_the_success_rate() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(2).with_burst_loss(0.1, 0.2, 1.0);
        let mut ch = FaultyChannel::new(
            GilbertElliottChannel::new(0.05, 0.2, 0.99, 0.5),
            &plan,
            12,
            &metrics,
        );
        let analytic = ch.success_rate();
        assert!(analytic < ch.inner().success_rate());
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let delivered = (0..n).filter(|_| ch.transmit(&mut rng)).count();
        let empirical = delivered as f64 / n as f64;
        assert!(
            (empirical - analytic).abs() < 0.01,
            "empirical {empirical} vs analytic {analytic}"
        );
        assert!(ch.stats().burst_lost > 0);
    }

    #[test]
    fn overlay_draws_do_not_touch_the_callers_stream() {
        // With the overlay armed, the *inner* channel outcomes under the
        // caller's seed must match the bare channel's exactly.
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(4).with_burst_loss(0.3, 0.3, 1.0);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut bare = BernoulliChannel::new(0.6);
        let mut wrapped = FaultyChannel::new(BernoulliChannel::new(0.6), &plan, 12, &metrics);
        for _ in 0..2_000 {
            let bare_ok = bare.transmit(&mut rng_a);
            let wrapped_ok = wrapped.transmit(&mut rng_b);
            // wrapped may only turn a delivery into a loss, never the
            // reverse — and the caller-stream draws stay aligned.
            if wrapped_ok {
                assert!(bare_ok, "overlay cannot resurrect a lost packet");
            }
        }
    }

    #[test]
    fn mangling_hook_applies_the_plan() {
        let metrics = MetricsRegistry::disabled();
        let plan = FaultPlan::none(6)
            .with_corruption(1.0, crate::plan::Region::Anywhere, 1)
            .with_duplication(1.0);
        let mut ch = FaultyChannel::new(BernoulliChannel::new(1.0), &plan, 0, &metrics);
        let out = ch.mangle(vec![0u8; 32]);
        assert_eq!(out.len(), 2, "duplication must double the packet");
        assert_ne!(out[0], vec![0u8; 32], "corruption must flip a bit");
        let stats = ch.stats();
        assert_eq!(stats.corrupted, 1);
        assert_eq!(stats.duplicated, 1);
    }
}
