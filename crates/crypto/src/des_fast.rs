//! Table-driven DES/3DES — the fast backend behind
//! [`crate::CipherBackend::Fast`].
//!
//! The reference in [`crate::des`] walks the published permutation tables
//! bit by bit for every block: the E expansion, eight S-box lookups with
//! row/column decoding, the P permutation, and IP/IP⁻¹ cost ≈1400 loop
//! iterations per DES pass. This implementation precomputes all of that
//! once, at compile time:
//!
//! * **SP tables** — S-box substitution and the P permutation fuse into
//!   eight 64-entry u32 tables indexed directly by the 6-bit chunk, so the
//!   round function is 8 loads and 8 XORs.
//! * **E expansion by rotation** — the expansion's 6-bit chunks are
//!   consecutive windows of `R` rotated right by one; duplicating the
//!   rotated word into a u64 turns the whole table walk into 8 shifts.
//! * **IP / IP⁻¹ byte tables** — each permutation becomes eight 256-entry
//!   u64 lookups (one per input byte) ORed together.
//!
//! The key schedule is unchanged — it reuses the reference
//! [`DesKeySchedule`], since it runs once per cipher, not per block.
//! Bit-exactness against the reference is pinned by the differential tests
//! below and in `tests/` (the classic DES vectors plus random blocks).

use crate::des::{DesKeySchedule, IP, P, SBOXES};
use crate::BlockCipher;

/// `const` u64 permutation used to build the IP/IP⁻¹ byte tables: output
/// bit `i+1` (1-based, MSB-first) is input bit `table[i]`.
const fn ct_permute64(input: u64, table: &[u8; 64]) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 64 {
        out <<= 1;
        out |= (input >> (64 - table[i] as u32)) & 1;
        i += 1;
    }
    out
}

/// IP⁻¹ as a table, derived from [`IP`]: IP maps input bit `IP[i]` to
/// output bit `i+1`, so the inverse maps input bit `i+1` to output `IP[i]`.
const FP: [u8; 64] = {
    let mut fp = [0u8; 64];
    let mut i = 0;
    while i < 64 {
        fp[IP[i] as usize - 1] = i as u8 + 1;
        i += 1;
    }
    fp
};

/// Per-input-byte contribution tables: `TAB[b][v]` is the permuted output
/// when input byte `b` (0 = most significant) holds value `v` and all other
/// bytes are zero. Permutations are linear over bit-OR, so the full result
/// is the OR of eight lookups.
const fn byte_permutation_table(table: &[u8; 64]) -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut b = 0;
    while b < 8 {
        let mut v = 0;
        while v < 256 {
            t[b][v] = ct_permute64((v as u64) << (56 - 8 * b), table);
            v += 1;
        }
        b += 1;
    }
    t
}

const IP_TAB: [[u64; 256]; 8] = byte_permutation_table(&IP);
const FP_TAB: [[u64; 256]; 8] = byte_permutation_table(&FP);

#[inline]
fn permute_by_bytes(x: u64, tab: &[[u64; 256]; 8]) -> u64 {
    tab[0][(x >> 56) as usize]
        | tab[1][((x >> 48) & 0xff) as usize]
        | tab[2][((x >> 40) & 0xff) as usize]
        | tab[3][((x >> 32) & 0xff) as usize]
        | tab[4][((x >> 24) & 0xff) as usize]
        | tab[5][((x >> 16) & 0xff) as usize]
        | tab[6][((x >> 8) & 0xff) as usize]
        | tab[7][(x & 0xff) as usize]
}

/// Fused S-box + P-permutation tables: `SP[i][chunk]` is the P-permuted
/// contribution of S-box `i` fed with the raw 6-bit `chunk` (row/column
/// decoding folded in).
const SP: [[u32; 64]; 8] = {
    let mut sp = [[0u32; 64]; 8];
    let mut i = 0;
    while i < 8 {
        let mut chunk = 0;
        while chunk < 64 {
            let row = ((chunk & 0x20) >> 4) | (chunk & 1);
            let col = (chunk >> 1) & 0x0f;
            let s = SBOXES[i][row * 16 + col] as u64;
            // Place the 4-bit output at its pre-P position, then apply P.
            let pre = s << (28 - 4 * i);
            let mut out = 0u64;
            let mut j = 0;
            while j < 32 {
                out <<= 1;
                out |= (pre >> (32 - P[j] as u32)) & 1;
                j += 1;
            }
            sp[i][chunk] = out as u32;
            chunk += 1;
        }
        i += 1;
    }
    sp
};

/// The DES round function with fused tables: E-expansion by rotation, then
/// eight SP lookups.
#[inline]
fn feistel_fast(r: u32, subkey: u64) -> u32 {
    // E's chunk g is input bits 4g..4g+5 (1-based, bit 0 = bit 32): six
    // consecutive bits of R rotated right by one, with wraparound. A
    // duplicated u64 makes every window a plain shift.
    let rot = r.rotate_right(1) as u64;
    let d = (rot << 32) | rot;
    SP[0][((d >> 58) ^ (subkey >> 42)) as usize & 0x3f]
        ^ SP[1][((d >> 54) ^ (subkey >> 36)) as usize & 0x3f]
        ^ SP[2][((d >> 50) ^ (subkey >> 30)) as usize & 0x3f]
        ^ SP[3][((d >> 46) ^ (subkey >> 24)) as usize & 0x3f]
        ^ SP[4][((d >> 42) ^ (subkey >> 18)) as usize & 0x3f]
        ^ SP[5][((d >> 38) ^ (subkey >> 12)) as usize & 0x3f]
        ^ SP[6][((d >> 34) ^ (subkey >> 6)) as usize & 0x3f]
        ^ SP[7][((d >> 30) ^ subkey) as usize & 0x3f]
}

#[inline]
fn des_crypt_fast(schedule: &DesKeySchedule, block: u64, decrypt: bool) -> u64 {
    let permuted = permute_by_bytes(block, &IP_TAB);
    let mut l = (permuted >> 32) as u32;
    let mut r = permuted as u32;
    for round in 0..16 {
        let k = if decrypt {
            schedule.round_keys[15 - round]
        } else {
            schedule.round_keys[round]
        };
        let next_r = l ^ feistel_fast(r, k);
        l = r;
        r = next_r;
    }
    permute_by_bytes(((r as u64) << 32) | l as u64, &FP_TAB)
}

/// Table-driven single DES (validation / building block for [`TripleDesFast`]).
#[derive(Clone)]
pub struct DesFast {
    schedule: DesKeySchedule,
}

impl DesFast {
    /// Build a DES context from an 8-byte key (parity bits ignored).
    pub fn new(key: &[u8; 8]) -> Self {
        DesFast {
            schedule: DesKeySchedule::new(u64::from_be_bytes(*key)),
        }
    }
}

impl BlockCipher for DesFast {
    fn block_size(&self) -> usize {
        8
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES block must be 8 bytes");
        let b = u64::from_be_bytes(block.try_into().unwrap());
        block.copy_from_slice(&des_crypt_fast(&self.schedule, b, false).to_be_bytes());
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES block must be 8 bytes");
        let b = u64::from_be_bytes(block.try_into().unwrap());
        block.copy_from_slice(&des_crypt_fast(&self.schedule, b, true).to_be_bytes());
    }
}

/// Table-driven Triple DES, EDE3: `C = E_{k3}(D_{k2}(E_{k1}(P)))`.
#[derive(Clone)]
pub struct TripleDesFast {
    k1: DesKeySchedule,
    k2: DesKeySchedule,
    k3: DesKeySchedule,
}

impl TripleDesFast {
    /// Build a 3DES context from a 24-byte key (three 8-byte DES keys).
    pub fn new(key: &[u8; 24]) -> Self {
        let k = |i: usize| {
            DesKeySchedule::new(u64::from_be_bytes(key[8 * i..8 * i + 8].try_into().unwrap()))
        };
        TripleDesFast {
            k1: k(0),
            k2: k(1),
            k3: k(2),
        }
    }
}

impl BlockCipher for TripleDesFast {
    fn block_size(&self) -> usize {
        8
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES block must be 8 bytes");
        let mut b = u64::from_be_bytes(block.try_into().unwrap());
        b = des_crypt_fast(&self.k1, b, false);
        b = des_crypt_fast(&self.k2, b, true);
        b = des_crypt_fast(&self.k3, b, false);
        block.copy_from_slice(&b.to_be_bytes());
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES block must be 8 bytes");
        let mut b = u64::from_be_bytes(block.try_into().unwrap());
        b = des_crypt_fast(&self.k3, b, true);
        b = des_crypt_fast(&self.k2, b, false);
        b = des_crypt_fast(&self.k1, b, true);
        block.copy_from_slice(&b.to_be_bytes());
    }
}

impl std::fmt::Debug for DesFast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DesFast(..)")
    }
}

impl std::fmt::Debug for TripleDesFast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TripleDesFast(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Des, TripleDes};

    #[test]
    fn classic_des_vector() {
        // Same canonical vector the reference pins.
        let key = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let des = DesFast::new(&key);
        let mut block = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x85E8_1354_0F0A_B405);
        des.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn nist_des_all_zero_vector() {
        let key = 0x0101_0101_0101_0101u64.to_be_bytes();
        let des = DesFast::new(&key);
        let mut block = [0u8; 8];
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x8CA6_4DE9_C1B1_23A7);
    }

    #[test]
    fn ip_byte_tables_match_bit_permutation() {
        for x in [
            0u64,
            1,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
            0xF0F0_F0F0_0F0F_0F0F,
            0x8000_0000_0000_0001,
        ] {
            let via_tables = permute_by_bytes(x, &IP_TAB);
            let via_bits = ct_permute64(x, &IP);
            assert_eq!(via_tables, via_bits, "x={x:#018x}");
            // And FP really inverts IP.
            assert_eq!(permute_by_bytes(via_tables, &FP_TAB), x);
        }
    }

    #[test]
    fn matches_reference_on_structured_blocks() {
        let mut k8 = [0u8; 8];
        let mut k24 = [0u8; 24];
        for seed in 0..32u8 {
            for (i, b) in k8.iter_mut().enumerate() {
                *b = seed.wrapping_mul(41).wrapping_add(i as u8 * 17);
            }
            for (i, b) in k24.iter_mut().enumerate() {
                *b = seed.wrapping_mul(23).wrapping_add(i as u8 * 5);
            }
            let fast = DesFast::new(&k8);
            let reference = Des::new(&k8);
            let fast3 = TripleDesFast::new(&k24);
            let reference3 = TripleDes::new(&k24);
            let mut block = [0u8; 8];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(97).wrapping_add(i as u8 * 19);
            }
            for (f, r) in [
                (&fast as &dyn BlockCipher, &reference as &dyn BlockCipher),
                (&fast3 as &dyn BlockCipher, &reference3 as &dyn BlockCipher),
            ] {
                let mut a = block;
                let mut b = block;
                f.encrypt_block(&mut a);
                r.encrypt_block(&mut b);
                assert_eq!(a, b, "encrypt diverged at seed {seed}");
                f.decrypt_block(&mut a);
                r.decrypt_block(&mut b);
                assert_eq!(a, b, "decrypt diverged at seed {seed}");
                assert_eq!(a, block, "roundtrip failed at seed {seed}");
            }
        }
    }

    #[test]
    fn triple_des_with_equal_keys_degenerates_to_des() {
        let k8 = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let mut k24 = [0u8; 24];
        k24[..8].copy_from_slice(&k8);
        k24[8..16].copy_from_slice(&k8);
        k24[16..].copy_from_slice(&k8);
        let tdes = TripleDesFast::new(&k24);
        let des = DesFast::new(&k8);
        let mut b1 = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let mut b2 = b1;
        tdes.encrypt_block(&mut b1);
        des.encrypt_block(&mut b2);
        assert_eq!(b1, b2);
    }
}
