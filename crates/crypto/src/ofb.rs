//! Output Feedback (OFB) stream mode, NIST SP 800-38A §6.4.
//!
//! OFB turns a block cipher into a synchronous stream cipher:
//! `O₀ = IV`, `Oᵢ = E_K(Oᵢ₋₁)`, `Cᵢ = Pᵢ ⊕ Oᵢ`. Encryption and decryption
//! are the same operation, and — as the paper notes in Section 5 — a bit
//! error in one ciphertext block does not propagate to later blocks of the
//! keystream, which is why the Android app applies OFB per video segment.

use crate::BlockCipher;

/// An OFB keystream generator over any [`BlockCipher`].
///
/// The struct borrows the cipher, holds the current feedback block, and
/// hands out keystream lazily; [`apply`](Ofb::apply) XORs it over a buffer
/// of any length (the final partial block of keystream is discarded, per
/// SP 800-38A).
pub struct Ofb<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
    feedback: Vec<u8>,
    /// Next unread keystream byte within `feedback`; `block_size` means the
    /// current block is exhausted.
    cursor: usize,
}

impl<'c, C: BlockCipher + ?Sized> Ofb<'c, C> {
    /// Start a keystream from `iv`, which must be exactly one block long.
    ///
    /// # Panics
    /// If `iv.len() != cipher.block_size()`.
    pub fn new(cipher: &'c C, iv: &[u8]) -> Self {
        assert_eq!(
            iv.len(),
            cipher.block_size(),
            "OFB IV must be exactly one block"
        );
        Ofb {
            cipher,
            feedback: iv.to_vec(),
            // Force a block-encryption before the first byte is used: O₁ is
            // the first keystream block, the raw IV is never output.
            cursor: iv.len(),
        }
    }

    /// Produce the next keystream byte.
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        if self.cursor == self.feedback.len() {
            self.cipher.encrypt_block(&mut self.feedback);
            self.cursor = 0;
        }
        let b = self.feedback[self.cursor];
        self.cursor += 1;
        b
    }

    /// XOR the keystream over `data` in place (encrypts or decrypts).
    ///
    /// Works block-at-a-time: any partially consumed keystream block is
    /// drained byte-wise first, then whole blocks are generated with one
    /// `encrypt_block` each and XORed in word-sized chunks, and a final
    /// partial block falls back to [`next_byte`](Ofb::next_byte). The
    /// cursor state is identical to what the byte loop would leave, so
    /// `apply` and `next_byte` calls can be interleaved freely.
    pub fn apply(&mut self, data: &mut [u8]) {
        let block = self.feedback.len();
        let mut i = 0;
        // Drain whatever is left of the current keystream block.
        while self.cursor < block && i < data.len() {
            data[i] ^= self.feedback[self.cursor];
            self.cursor += 1;
            i += 1;
        }
        // Whole blocks: one cipher call + word-wide XOR per block. The
        // feedback buffer is left fully consumed (`cursor == block`),
        // exactly as the byte path would.
        while data.len() - i >= block {
            self.cipher.encrypt_block(&mut self.feedback);
            xor_in_place(&mut data[i..i + block], &self.feedback);
            i += block;
        }
        // Final partial block (if any) via the byte path, which also
        // generates the next keystream block and positions the cursor.
        while i < data.len() {
            data[i] ^= self.next_byte();
            i += 1;
        }
    }
}

/// XOR `ks` into `dst` using u64 lanes (both slices have equal length, a
/// whole cipher block — 8 or 16 bytes — so the remainder loop is empty for
/// the ciphers in this crate but kept for generality).
#[inline]
fn xor_in_place(dst: &mut [u8], ks: &[u8]) {
    debug_assert_eq!(dst.len(), ks.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut k = ks.chunks_exact(8);
    for (dc, kc) in (&mut d).zip(&mut k) {
        let x = u64::from_ne_bytes(dc[..8].try_into().unwrap())
            ^ u64::from_ne_bytes(kc.try_into().unwrap());
        dc.copy_from_slice(&x.to_ne_bytes());
    }
    for (db, kb) in d.into_remainder().iter_mut().zip(k.remainder()) {
        *db ^= kb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::des::TripleDes;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_ofb_aes128_vector() {
        // NIST SP 800-38A F.4.1 (OFB-AES128):
        // Key 2b7e151628aed2a6abf7158809cf4f3c, IV 000102030405060708090a0b0c0d0e0f
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        ));
        Ofb::new(&cipher, &iv).apply(&mut data);
        let expected = hex(concat!(
            "3b3fd92eb72dad20333449f8e83cfb4a",
            "7789508d16918f03f53c52dac54ed825"
        ));
        assert_eq!(data, expected);
    }

    #[test]
    fn ofb_is_an_involution() {
        let key: [u8; 16] = [9; 16];
        let cipher = Aes128::new(&key);
        let iv = [3u8; 16];
        let original: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        Ofb::new(&cipher, &iv).apply(&mut data);
        Ofb::new(&cipher, &iv).apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn partial_block_lengths_work() {
        let key: [u8; 24] = [1; 24];
        let cipher = TripleDes::new(&key);
        let iv = [0u8; 8];
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100] {
            let original = vec![0x5Au8; len];
            let mut data = original.clone();
            Ofb::new(&cipher, &iv).apply(&mut data);
            Ofb::new(&cipher, &iv).apply(&mut data);
            assert_eq!(data, original, "len={len}");
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        // Applying the keystream in several calls must equal one big call.
        let key: [u8; 16] = [0xAB; 16];
        let cipher = Aes128::new(&key);
        let iv = [0x11u8; 16];
        let mut a = vec![0u8; 100];
        Ofb::new(&cipher, &iv).apply(&mut a);
        let mut b = vec![0u8; 100];
        let mut ofb = Ofb::new(&cipher, &iv);
        for chunk in b.chunks_mut(7) {
            ofb.apply(chunk);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_and_byte_paths_interleave_identically() {
        // Regression for the block-wise `apply` fast path: mixing `apply`
        // (which may take the bulk route) with `next_byte` at arbitrary
        // offsets must produce the same keystream as a pure byte loop.
        let key: [u8; 16] = [0x3C; 16];
        let cipher = Aes128::new(&key);
        let iv = [0x77u8; 16];
        // Oracle: the keystream drawn one byte at a time.
        let mut oracle = Ofb::new(&cipher, &iv);
        let expected: Vec<u8> = (0..200).map(|_| oracle.next_byte()).collect();
        // Candidate: apply over a misaligned chunk, then single bytes, then
        // another apply spanning several blocks, for several split points.
        for split in [0usize, 1, 5, 15, 16, 17, 31, 33] {
            let mut ofb = Ofb::new(&cipher, &iv);
            let mut out = vec![0u8; 200];
            ofb.apply(&mut out[..split]);
            let n_single = 3.min(200 - split);
            for b in out[split..split + n_single].iter_mut() {
                *b ^= ofb.next_byte();
            }
            ofb.apply(&mut out[split + n_single..]);
            assert_eq!(out, expected, "split={split}");
        }
    }

    #[test]
    fn bulk_path_matches_on_des_blocks_too() {
        // 8-byte blocks exercise the single-u64 XOR lane.
        let key: [u8; 24] = [0x42; 24];
        let cipher = TripleDes::new(&key);
        let iv = [0x0Fu8; 8];
        let mut oracle = Ofb::new(&cipher, &iv);
        let expected: Vec<u8> = (0..64).map(|_| oracle.next_byte()).collect();
        let mut bulk = vec![0u8; 64];
        Ofb::new(&cipher, &iv).apply(&mut bulk);
        assert_eq!(bulk, expected);
    }

    #[test]
    #[should_panic(expected = "OFB IV must be exactly one block")]
    fn wrong_iv_length_panics() {
        let key: [u8; 16] = [0; 16];
        let cipher = Aes128::new(&key);
        let _ = Ofb::new(&cipher, &[0u8; 8]);
    }
}
