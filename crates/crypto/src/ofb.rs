//! Output Feedback (OFB) stream mode, NIST SP 800-38A §6.4.
//!
//! OFB turns a block cipher into a synchronous stream cipher:
//! `O₀ = IV`, `Oᵢ = E_K(Oᵢ₋₁)`, `Cᵢ = Pᵢ ⊕ Oᵢ`. Encryption and decryption
//! are the same operation, and — as the paper notes in Section 5 — a bit
//! error in one ciphertext block does not propagate to later blocks of the
//! keystream, which is why the Android app applies OFB per video segment.

use crate::BlockCipher;

/// An OFB keystream generator over any [`BlockCipher`].
///
/// The struct borrows the cipher, holds the current feedback block, and
/// hands out keystream lazily; [`apply`](Ofb::apply) XORs it over a buffer
/// of any length (the final partial block of keystream is discarded, per
/// SP 800-38A).
pub struct Ofb<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
    feedback: Vec<u8>,
    /// Next unread keystream byte within `feedback`; `block_size` means the
    /// current block is exhausted.
    cursor: usize,
}

impl<'c, C: BlockCipher + ?Sized> Ofb<'c, C> {
    /// Start a keystream from `iv`, which must be exactly one block long.
    ///
    /// # Panics
    /// If `iv.len() != cipher.block_size()`.
    pub fn new(cipher: &'c C, iv: &[u8]) -> Self {
        assert_eq!(
            iv.len(),
            cipher.block_size(),
            "OFB IV must be exactly one block"
        );
        Ofb {
            cipher,
            feedback: iv.to_vec(),
            // Force a block-encryption before the first byte is used: O₁ is
            // the first keystream block, the raw IV is never output.
            cursor: iv.len(),
        }
    }

    /// Produce the next keystream byte.
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        if self.cursor == self.feedback.len() {
            self.cipher.encrypt_block(&mut self.feedback);
            self.cursor = 0;
        }
        let b = self.feedback[self.cursor];
        self.cursor += 1;
        b
    }

    /// XOR the keystream over `data` in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::des::TripleDes;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_ofb_aes128_vector() {
        // NIST SP 800-38A F.4.1 (OFB-AES128):
        // Key 2b7e151628aed2a6abf7158809cf4f3c, IV 000102030405060708090a0b0c0d0e0f
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        ));
        Ofb::new(&cipher, &iv).apply(&mut data);
        let expected = hex(concat!(
            "3b3fd92eb72dad20333449f8e83cfb4a",
            "7789508d16918f03f53c52dac54ed825"
        ));
        assert_eq!(data, expected);
    }

    #[test]
    fn ofb_is_an_involution() {
        let key: [u8; 16] = [9; 16];
        let cipher = Aes128::new(&key);
        let iv = [3u8; 16];
        let original: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        Ofb::new(&cipher, &iv).apply(&mut data);
        Ofb::new(&cipher, &iv).apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn partial_block_lengths_work() {
        let key: [u8; 24] = [1; 24];
        let cipher = TripleDes::new(&key);
        let iv = [0u8; 8];
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100] {
            let original = vec![0x5Au8; len];
            let mut data = original.clone();
            Ofb::new(&cipher, &iv).apply(&mut data);
            Ofb::new(&cipher, &iv).apply(&mut data);
            assert_eq!(data, original, "len={len}");
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        // Applying the keystream in several calls must equal one big call.
        let key: [u8; 16] = [0xAB; 16];
        let cipher = Aes128::new(&key);
        let iv = [0x11u8; 16];
        let mut a = vec![0u8; 100];
        Ofb::new(&cipher, &iv).apply(&mut a);
        let mut b = vec![0u8; 100];
        let mut ofb = Ofb::new(&cipher, &iv);
        for chunk in b.chunks_mut(7) {
            ofb.apply(chunk);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "OFB IV must be exactly one block")]
    fn wrong_iv_length_panics() {
        let key: [u8; 16] = [0; 16];
        let cipher = Aes128::new(&key);
        let _ = Ofb::new(&cipher, &[0u8; 8]);
    }
}
