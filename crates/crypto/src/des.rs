//! DES and Triple-DES (EDE3) block ciphers, ANSI X3.92 / X9.52.
//!
//! Bit-level reference implementation driven by the published permutation
//! tables. Bits are numbered 1..=64 MSB-first as in the standard. 3DES
//! encrypts as `E_{k1}(D_{k2}(E_{k3}⁻¹…))` — precisely
//! `C = E_{k3}(D_{k2}(E_{k1}(P)))` with three independent 8-byte keys.

use crate::BlockCipher;

/// Initial permutation (IP).
pub(crate) const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Expansion table (E): 32 → 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17,
    18, 19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Round permutation (P): 32 → 32 bits.
pub(crate) const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (PC-1): 64 → 56 bits, drops parity bits.
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3,
    60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37,
    29, 21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (PC-2): 56 → 48 bits.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41,
    52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-rotation amounts for the key schedule.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight DES S-boxes, each 4 rows × 16 columns.
pub(crate) const SBOXES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6,
        12, 11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2,
        4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0,
        1, 10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1,
        3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10,
        1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0,
        15, 10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7,
        1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1,
        13, 14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12,
        9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3,
        5, 12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8,
        1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5,
        6, 11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4,
        10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Apply a standard DES permutation table: output bit `i` (1-based,
/// MSB-first) is input bit `table[i-1]`.
#[inline]
fn permute(input: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out <<= 1;
        out |= (input >> (in_bits - src as u32)) & 1;
    }
    out
}

/// The 16 48-bit round keys of a single-DES instance.
#[derive(Clone)]
pub(crate) struct DesKeySchedule {
    pub(crate) round_keys: [u64; 16],
}

impl DesKeySchedule {
    pub(crate) fn new(key: u64) -> Self {
        let permuted = permute(key, 64, &PC1); // 56 bits
        let mut c = (permuted >> 28) as u32 & 0x0fff_ffff;
        let mut d = permuted as u32 & 0x0fff_ffff;
        let mut round_keys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = ((c << shift) | (c >> (28 - shift as u32))) & 0x0fff_ffff;
            d = ((d << shift) | (d >> (28 - shift as u32))) & 0x0fff_ffff;
            let cd = ((c as u64) << 28) | d as u64;
            round_keys[round] = permute(cd, 56, &PC2);
        }
        DesKeySchedule { round_keys }
    }
}

/// The DES round function f(R, K).
#[inline]
fn feistel(r: u32, subkey: u64) -> u32 {
    let expanded = permute(r as u64, 32, &E); // 48 bits
    let x = expanded ^ subkey;
    let mut out = 0u32;
    for (i, sbox) in SBOXES.iter().enumerate() {
        let chunk = ((x >> (42 - 6 * i)) & 0x3f) as u8;
        let row = ((chunk & 0x20) >> 4) | (chunk & 1);
        let col = (chunk >> 1) & 0x0f;
        out = (out << 4) | sbox[(row * 16 + col) as usize] as u32;
    }
    permute(out as u64, 32, &P) as u32
}

fn des_crypt(schedule: &DesKeySchedule, block: u64, decrypt: bool) -> u64 {
    let permuted = permute(block, 64, &IP);
    let mut l = (permuted >> 32) as u32;
    let mut r = permuted as u32;
    for round in 0..16 {
        let k = if decrypt {
            schedule.round_keys[15 - round]
        } else {
            schedule.round_keys[round]
        };
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    // Final swap then IP⁻¹. We invert IP by applying the inverse mapping.
    let preoutput = ((r as u64) << 32) | l as u64;
    inverse_ip(preoutput)
}

/// Apply IP⁻¹, derived from [`IP`] rather than hand-copied, removing one
/// source of transcription error.
#[inline]
fn inverse_ip(input: u64) -> u64 {
    let mut out = 0u64;
    for (i, &src) in IP.iter().enumerate() {
        // IP maps input bit `src` to output bit `i+1`; invert that.
        let bit = (input >> (63 - i)) & 1;
        out |= bit << (64 - src as u32);
    }
    out
}

/// Single DES with a 64-bit key (56 effective bits).
///
/// Exposed for completeness and testing; the paper's policies use
/// [`TripleDes`].
#[derive(Clone)]
pub struct Des {
    schedule: DesKeySchedule,
}

impl Des {
    /// Build a DES context from an 8-byte key (parity bits ignored).
    pub fn new(key: &[u8; 8]) -> Self {
        Des {
            schedule: DesKeySchedule::new(u64::from_be_bytes(*key)),
        }
    }
}

impl BlockCipher for Des {
    fn block_size(&self) -> usize {
        8
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES block must be 8 bytes");
        let b = u64::from_be_bytes(block.try_into().unwrap());
        block.copy_from_slice(&des_crypt(&self.schedule, b, false).to_be_bytes());
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES block must be 8 bytes");
        let b = u64::from_be_bytes(block.try_into().unwrap());
        block.copy_from_slice(&des_crypt(&self.schedule, b, true).to_be_bytes());
    }
}

/// Triple DES, EDE3: `C = E_{k3}(D_{k2}(E_{k1}(P)))` with a 24-byte key.
#[derive(Clone)]
pub struct TripleDes {
    k1: DesKeySchedule,
    k2: DesKeySchedule,
    k3: DesKeySchedule,
}

impl TripleDes {
    /// Build a 3DES context from a 24-byte key (three 8-byte DES keys).
    pub fn new(key: &[u8; 24]) -> Self {
        let k = |i: usize| {
            DesKeySchedule::new(u64::from_be_bytes(key[8 * i..8 * i + 8].try_into().unwrap()))
        };
        TripleDes {
            k1: k(0),
            k2: k(1),
            k3: k(2),
        }
    }
}

impl BlockCipher for TripleDes {
    fn block_size(&self) -> usize {
        8
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES block must be 8 bytes");
        let mut b = u64::from_be_bytes(block.try_into().unwrap());
        b = des_crypt(&self.k1, b, false);
        b = des_crypt(&self.k2, b, true);
        b = des_crypt(&self.k3, b, false);
        block.copy_from_slice(&b.to_be_bytes());
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES block must be 8 bytes");
        let mut b = u64::from_be_bytes(block.try_into().unwrap());
        b = des_crypt(&self.k3, b, true);
        b = des_crypt(&self.k2, b, false);
        b = des_crypt(&self.k1, b, true);
        block.copy_from_slice(&b.to_be_bytes());
    }
}

impl std::fmt::Debug for Des {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Des(..)")
    }
}

impl std::fmt::Debug for TripleDes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TripleDes(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_des_vector() {
        // The canonical worked example (e.g. Stallings): key 133457799BBCDFF1,
        // plaintext 0123456789ABCDEF encrypts to 85E813540F0AB405.
        let key = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let des = Des::new(&key);
        let mut block = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x85E8_1354_0F0A_B405);
        des.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn nist_des_all_zero_vector() {
        // NBS/NIST validation: E(key=0101..01, pt=0) = 8CA64DE9C1B123A7.
        let key = 0x0101_0101_0101_0101u64.to_be_bytes();
        let des = Des::new(&key);
        let mut block = [0u8; 8];
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x8CA6_4DE9_C1B1_23A7);
    }

    #[test]
    fn triple_des_with_equal_keys_degenerates_to_des() {
        // EDE with k1 = k2 = k3 must equal single DES.
        let k8 = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let mut k24 = [0u8; 24];
        k24[..8].copy_from_slice(&k8);
        k24[8..16].copy_from_slice(&k8);
        k24[16..].copy_from_slice(&k8);
        let tdes = TripleDes::new(&k24);
        let des = Des::new(&k8);
        let mut b1 = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let mut b2 = b1;
        tdes.encrypt_block(&mut b1);
        des.encrypt_block(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn triple_des_roundtrip_distinct_keys() {
        let mut key = [0u8; 24];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(5);
        }
        let tdes = TripleDes::new(&key);
        let original = [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67];
        let mut block = original;
        tdes.encrypt_block(&mut block);
        assert_ne!(block, original);
        tdes.decrypt_block(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn inverse_ip_inverts_ip() {
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF, 0xF0F0_F0F0_0F0F_0F0F] {
            let y = permute(x, 64, &IP);
            assert_eq!(inverse_ip(y), x);
        }
    }

    #[test]
    fn des_complementation_property() {
        // DES satisfies E_{~k}(~p) = ~E_k(p).
        let key = 0x0123_4567_89AB_CDEFu64;
        let pt = 0x4E6F_7720_6973_2074u64;
        let des = Des::new(&key.to_be_bytes());
        let des_c = Des::new(&(!key).to_be_bytes());
        let mut a = pt.to_be_bytes();
        des.encrypt_block(&mut a);
        let mut b = (!pt).to_be_bytes();
        des_c.encrypt_block(&mut b);
        assert_eq!(u64::from_be_bytes(b), !u64::from_be_bytes(a));
    }

    #[test]
    fn weak_key_produces_identical_subkeys() {
        // The classic DES weak key 0101..01 makes every round key equal
        // (C and D registers are all-zero), so E(E(x)) = x.
        let key = 0x0101_0101_0101_0101u64.to_be_bytes();
        let des = Des::new(&key);
        let s = DesKeySchedule::new(u64::from_be_bytes(key));
        for k in &s.round_keys[1..] {
            assert_eq!(*k, s.round_keys[0]);
        }
        let mut block = *b"weakweak";
        let original = block;
        des.encrypt_block(&mut block);
        des.encrypt_block(&mut block);
        assert_eq!(block, original, "weak key must be an involution");
    }

    #[test]
    fn key_schedule_produces_16_distinct_subkeys_for_nondegenerate_key() {
        let s = DesKeySchedule::new(0x1334_5779_9BBC_DFF1);
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(s.round_keys[i], s.round_keys[j], "subkeys {i} and {j} collide");
            }
        }
    }
}
