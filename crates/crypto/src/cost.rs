//! Encryption-cost model.
//!
//! The analytical framework (paper Section 4.2.2) needs the *distribution*
//! of the encryption time `T_e` for a packet: approximately Gaussian around
//! a size-dependent mean (eq. 15). This module provides that abstraction:
//! a per-(algorithm, device) affine cost `t(n) = setup + n·per_byte`, plus a
//! jitter term, and a calibration routine that fits the model from observed
//! `(bytes, seconds)` samples — mirroring how the paper "uses an initial
//! sequence of events to tune the parameters" (Section 6.1).

use crate::Algorithm;

/// One observed encryption timing: `bytes` encrypted in `seconds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSample {
    /// Payload length in bytes.
    pub bytes: usize,
    /// Measured wall-clock duration in seconds.
    pub seconds: f64,
}

/// Affine per-packet encryption cost with Gaussian jitter.
///
/// `time(n) ~ Normal(setup_s + n * per_byte_s, jitter_std_s²)`, truncated at
/// zero when sampled. All times are in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-call overhead (key/IV setup, JNI boundary in the paper's
    /// Android app), seconds.
    pub setup_s: f64,
    /// Marginal cost per payload byte, seconds.
    pub per_byte_s: f64,
    /// Standard deviation of the residual jitter, seconds.
    pub jitter_std_s: f64,
}

impl CostModel {
    /// A reference software profile for `algorithm` on a CPU with the given
    /// clock in GHz, assuming table-driven cipher code at ~25 cycles/byte
    /// for AES-128 scaled by [`Algorithm::relative_cost`].
    pub fn reference(algorithm: Algorithm, clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock must be positive");
        let cycles_per_byte = 25.0 * algorithm.relative_cost();
        let per_byte_s = cycles_per_byte / (clock_ghz * 1e9);
        CostModel {
            // ~2µs fixed overhead per segment call (key schedule is cached,
            // this is the IV derivation + call overhead).
            setup_s: 2e-6,
            per_byte_s,
            jitter_std_s: per_byte_s * 40.0, // jitter comparable to ~40 bytes of work
        }
    }

    /// Mean encryption time for an `n`-byte packet, seconds.
    pub fn mean_time(&self, n: usize) -> f64 {
        self.setup_s + n as f64 * self.per_byte_s
    }

    /// Variance of the encryption time (size-independent jitter), seconds².
    pub fn variance(&self) -> f64 {
        self.jitter_std_s * self.jitter_std_s
    }

    /// Least-squares fit of `(setup_s, per_byte_s)` from timing samples, with
    /// `jitter_std_s` set to the residual standard deviation.
    ///
    /// Returns `None` when fewer than two distinct packet sizes are supplied
    /// (the affine model is then unidentifiable).
    pub fn fit(samples: &[CostSample]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|s| s.bytes as f64).sum();
        let sy: f64 = samples.iter().map(|s| s.seconds).sum();
        let sxx: f64 = samples.iter().map(|s| (s.bytes as f64).powi(2)).sum();
        let sxy: f64 = samples.iter().map(|s| s.bytes as f64 * s.seconds).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None; // all samples have the same size
        }
        let per_byte_s = (n * sxy - sx * sy) / denom;
        let setup_s = (sy - per_byte_s * sx) / n;
        let mut ss_res = 0.0;
        for s in samples {
            let pred = setup_s + per_byte_s * s.bytes as f64;
            ss_res += (s.seconds - pred).powi(2);
        }
        let jitter_std_s = (ss_res / n).sqrt();
        Some(CostModel {
            setup_s,
            per_byte_s,
            jitter_std_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_models_preserve_algorithm_ordering() {
        let ghz = 1.2; // Samsung Galaxy S-II clock
        let aes128 = CostModel::reference(Algorithm::Aes128, ghz);
        let aes256 = CostModel::reference(Algorithm::Aes256, ghz);
        let tdes = CostModel::reference(Algorithm::TripleDes, ghz);
        let n = 1460;
        assert!(aes128.mean_time(n) < aes256.mean_time(n));
        assert!(aes256.mean_time(n) < tdes.mean_time(n));
        // 3DES ≈ 6× AES128 marginal cost
        let ratio = tdes.per_byte_s / aes128.per_byte_s;
        assert!((ratio - 6.0).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_means_lower_cost() {
        let slow = CostModel::reference(Algorithm::Aes256, 1.2);
        let fast = CostModel::reference(Algorithm::Aes256, 1.5);
        assert!(fast.per_byte_s < slow.per_byte_s);
    }

    #[test]
    fn fit_recovers_exact_affine_data() {
        let truth = CostModel {
            setup_s: 3e-6,
            per_byte_s: 2e-8,
            jitter_std_s: 0.0,
        };
        let samples: Vec<CostSample> = [100usize, 400, 800, 1460]
            .iter()
            .map(|&bytes| CostSample {
                bytes,
                seconds: truth.mean_time(bytes),
            })
            .collect();
        let fitted = CostModel::fit(&samples).unwrap();
        assert!((fitted.setup_s - truth.setup_s).abs() < 1e-12);
        assert!((fitted.per_byte_s - truth.per_byte_s).abs() < 1e-14);
        assert!(fitted.jitter_std_s < 1e-12);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(CostModel::fit(&[]).is_none());
        assert!(CostModel::fit(&[CostSample {
            bytes: 100,
            seconds: 1e-5
        }])
        .is_none());
        // Two samples with identical sizes: slope unidentifiable.
        let same = [
            CostSample {
                bytes: 100,
                seconds: 1e-5,
            },
            CostSample {
                bytes: 100,
                seconds: 2e-5,
            },
        ];
        assert!(CostModel::fit(&same).is_none());
    }

    #[test]
    fn mean_time_is_monotone_in_size() {
        let m = CostModel::reference(Algorithm::Aes128, 1.0);
        assert!(m.mean_time(0) < m.mean_time(1));
        assert!(m.mean_time(100) < m.mean_time(1460));
    }
}
