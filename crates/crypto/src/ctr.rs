//! Counter (CTR) mode, NIST SP 800-38A §6.5.
//!
//! Not used by the paper (which picked OFB), but included as the natural
//! modern comparison point: CTR shares OFB's one-byte error containment
//! while additionally allowing random access into the keystream — which is
//! exactly what a receiver reassembling out-of-order RTP fragments wants.
//! The mode-choice tests quantify the comparison.

use crate::BlockCipher;

/// CTR keystream generator: block `i` is `E_K(counter_block(iv, i))`, where
/// the low 64 bits of the counter block hold a big-endian block index added
/// to the IV's initial value.
pub struct Ctr<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
    iv: Vec<u8>,
}

impl<'c, C: BlockCipher + ?Sized> Ctr<'c, C> {
    /// Create a CTR context from a one-block initial counter value.
    ///
    /// # Panics
    /// If `iv.len() != cipher.block_size()`.
    pub fn new(cipher: &'c C, iv: &[u8]) -> Self {
        assert_eq!(
            iv.len(),
            cipher.block_size(),
            "CTR IV must be exactly one block"
        );
        Ctr {
            cipher,
            iv: iv.to_vec(),
        }
    }

    fn counter_block(&self, index: u64) -> Vec<u8> {
        let mut block = self.iv.clone();
        let n = block.len();
        // Add `index` into the low 64 bits (big-endian) with carry.
        let low_start = n - 8;
        let current = u64::from_be_bytes(block[low_start..].try_into().expect("8 bytes"));
        let (sum, _carry) = current.overflowing_add(index);
        block[low_start..].copy_from_slice(&sum.to_be_bytes());
        block
    }

    /// XOR the keystream over `data` starting at keystream byte offset
    /// `offset` — random access, no need to generate earlier bytes.
    pub fn apply_at(&self, offset: usize, data: &mut [u8]) {
        let block = self.cipher.block_size();
        let mut pos = offset;
        let mut i = 0usize;
        while i < data.len() {
            let block_index = (pos / block) as u64;
            let within = pos % block;
            let mut ks = self.counter_block(block_index);
            self.cipher.encrypt_block(&mut ks);
            let take = (block - within).min(data.len() - i);
            for k in 0..take {
                data[i + k] ^= ks[within + k];
            }
            i += take;
            pos += take;
        }
    }

    /// XOR the keystream over `data` from offset 0.
    pub fn apply(&self, data: &mut [u8]) {
        self.apply_at(0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_ctr_aes128_vector() {
        // NIST SP 800-38A F.5.1.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let cipher = Aes128::new(&key);
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        ));
        Ctr::new(&cipher, &iv).apply(&mut data);
        assert_eq!(
            data,
            hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff"
            ))
        );
    }

    #[test]
    fn ctr_is_an_involution() {
        let key: [u8; 16] = [5; 16];
        let cipher = Aes128::new(&key);
        let iv = [0u8; 16];
        let original: Vec<u8> = (0..777u32).map(|i| (i * 13 % 256) as u8).collect();
        let mut data = original.clone();
        let ctr = Ctr::new(&cipher, &iv);
        ctr.apply(&mut data);
        assert_ne!(data, original);
        ctr.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn random_access_matches_sequential() {
        // Decrypting a middle fragment with `apply_at` must match the
        // sequential keystream — the out-of-order-RTP use case.
        let key: [u8; 16] = [0xC7; 16];
        let cipher = Aes128::new(&key);
        let iv = [9u8; 16];
        let ctr = Ctr::new(&cipher, &iv);
        let mut full = vec![0u8; 200];
        ctr.apply(&mut full);
        for (start, len) in [(0usize, 16usize), (5, 40), (16, 16), (33, 100), (199, 1)] {
            let mut fragment = vec![0u8; len];
            ctr.apply_at(start, &mut fragment);
            assert_eq!(&fragment, &full[start..start + len], "offset {start}");
        }
    }

    #[test]
    fn counter_carries_across_iv_boundary() {
        // IV with the low word at u64::MAX − 1 must wrap cleanly.
        let key: [u8; 16] = [1; 16];
        let cipher = Aes128::new(&key);
        let mut iv = [0u8; 16];
        iv[8..].copy_from_slice(&(u64::MAX - 1).to_be_bytes());
        let ctr = Ctr::new(&cipher, &iv);
        let mut data = vec![0u8; 64]; // spans the wrap
        ctr.apply(&mut data);
        // Still an involution across the wrap.
        let mut copy = data.clone();
        ctr.apply(&mut copy);
        assert!(copy.iter().all(|&b| b == 0));
    }

    #[test]
    fn single_bit_error_stays_single_byte() {
        let key: [u8; 16] = [2; 16];
        let cipher = Aes128::new(&key);
        let iv = [4u8; 16];
        let pt: Vec<u8> = (0..64u8).collect();
        let mut ct = pt.clone();
        Ctr::new(&cipher, &iv).apply(&mut ct);
        ct[33] ^= 0xFF;
        Ctr::new(&cipher, &iv).apply(&mut ct);
        let garbled = ct.iter().zip(pt.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(garbled, 1);
    }

    #[test]
    #[should_panic(expected = "CTR IV must be exactly one block")]
    fn wrong_iv_length_panics() {
        let key: [u8; 16] = [0; 16];
        let cipher = Aes128::new(&key);
        let _ = Ctr::new(&cipher, &[0u8; 8]);
    }
}
