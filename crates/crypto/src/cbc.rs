//! Cipher Block Chaining (CBC) mode with PKCS#7 padding, NIST SP 800-38A
//! §6.2.
//!
//! The paper chose OFB because "a possible error at the receiver does not
//! propagate to the following segments during the decryption process"
//! (Section 5). CBC is implemented here as the comparison point for that
//! design decision: a corrupted ciphertext block garbles a full plaintext
//! block *plus* one bit position of the next — the propagation OFB avoids
//! (see the mode-choice tests in this crate).

use crate::BlockCipher;

/// Errors from CBC decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext is empty or not a multiple of the block size.
    BadLength {
        /// Ciphertext length supplied.
        len: usize,
        /// Cipher block size.
        block: usize,
    },
    /// PKCS#7 padding is malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength { len, block } => {
                write!(f, "CBC ciphertext length {len} is not a positive multiple of {block}")
            }
            CbcError::BadPadding => write!(f, "invalid PKCS#7 padding"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Append PKCS#7 padding up to a multiple of `block` bytes.
pub fn pkcs7_pad(data: &mut Vec<u8>, block: usize) {
    assert!((1..=255).contains(&block), "block size must be 1..=255");
    let pad = block - data.len() % block;
    data.extend(std::iter::repeat_n(pad as u8, pad));
}

/// Strip and validate PKCS#7 padding.
pub fn pkcs7_unpad(data: &mut Vec<u8>, block: usize) -> Result<(), CbcError> {
    let &last = data.last().ok_or(CbcError::BadPadding)?;
    let pad = last as usize;
    if pad == 0 || pad > block || pad > data.len() {
        return Err(CbcError::BadPadding);
    }
    if !data[data.len() - pad..].iter().all(|&b| b == last) {
        return Err(CbcError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

/// Encrypt `plaintext` in CBC mode with PKCS#7 padding; returns ciphertext.
pub fn cbc_encrypt<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let block = cipher.block_size();
    assert_eq!(iv.len(), block, "IV must be one block");
    let mut data = plaintext.to_vec();
    pkcs7_pad(&mut data, block);
    let mut prev = iv.to_vec();
    for chunk in data.chunks_mut(block) {
        for (b, p) in chunk.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        cipher.encrypt_block(chunk);
        prev.copy_from_slice(chunk);
    }
    data
}

/// Decrypt a CBC ciphertext and strip padding.
pub fn cbc_decrypt<C: BlockCipher + ?Sized>(
    cipher: &C,
    iv: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CbcError> {
    let block = cipher.block_size();
    assert_eq!(iv.len(), block, "IV must be one block");
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(block) {
        return Err(CbcError::BadLength {
            len: ciphertext.len(),
            block,
        });
    }
    let mut out = ciphertext.to_vec();
    let mut prev = iv.to_vec();
    for chunk in out.chunks_mut(block) {
        let saved = chunk.to_vec();
        cipher.decrypt_block(chunk);
        for (b, p) in chunk.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    pkcs7_unpad(&mut out, block)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::des::TripleDes;
    use crate::ofb::Ofb;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_cbc_aes128_first_blocks() {
        // NIST SP 800-38A F.2.1: the raw block chain (no padding involved
        // for these full blocks — we check the internal chaining directly).
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let pt = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        ));
        let ct = cbc_encrypt(&cipher, &iv, &pt);
        // First two blocks must match the NIST vector (the third is padding).
        assert_eq!(&ct[..16], hex("7649abac8119b246cee98e9b12e9197d").as_slice());
        assert_eq!(
            &ct[16..32],
            hex("5086cb9b507219ee95db113a917678b2").as_slice()
        );
        let back = cbc_decrypt(&cipher, &iv, &ct).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn roundtrip_all_lengths() {
        let key: [u8; 16] = [9; 16];
        let cipher = Aes128::new(&key);
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100, 1460] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = cbc_encrypt(&cipher, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always adds bytes");
            assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn roundtrip_with_3des() {
        let key = [0x24u8; 24];
        let cipher = TripleDes::new(&key);
        let iv = [1u8; 8];
        let pt = b"segment payload bytes".to_vec();
        let ct = cbc_encrypt(&cipher, &iv, &pt);
        assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn pkcs7_roundtrip_and_validation() {
        let mut v = b"abc".to_vec();
        pkcs7_pad(&mut v, 8);
        assert_eq!(v.len(), 8);
        assert_eq!(&v[3..], &[5u8; 5]);
        pkcs7_unpad(&mut v, 8).unwrap();
        assert_eq!(v, b"abc");
        // Exact multiple gets a full padding block.
        let mut v = vec![7u8; 16];
        pkcs7_pad(&mut v, 16);
        assert_eq!(v.len(), 32);
        // Corrupt padding is rejected.
        let mut bad = vec![1u8, 2, 3, 9];
        assert_eq!(pkcs7_unpad(&mut bad, 8), Err(CbcError::BadPadding));
        let mut empty: Vec<u8> = vec![];
        assert_eq!(pkcs7_unpad(&mut empty, 8), Err(CbcError::BadPadding));
    }

    #[test]
    fn bad_ciphertext_length_rejected() {
        let key: [u8; 16] = [0; 16];
        let cipher = Aes128::new(&key);
        let iv = [0u8; 16];
        assert!(matches!(
            cbc_decrypt(&cipher, &iv, &[0u8; 17]),
            Err(CbcError::BadLength { len: 17, block: 16 })
        ));
        assert!(matches!(
            cbc_decrypt(&cipher, &iv, &[]),
            Err(CbcError::BadLength { len: 0, block: 16 })
        ));
    }

    /// The mode-choice ablation behind the paper's Section 5 decision:
    /// a single corrupted ciphertext byte garbles ~one block under CBC but
    /// exactly one byte under OFB.
    #[test]
    fn error_propagation_cbc_vs_ofb() {
        let key: [u8; 16] = [0x42; 16];
        let cipher = Aes128::new(&key);
        let iv = [7u8; 16];
        let pt: Vec<u8> = (0..64u8).collect();

        // CBC: corrupt one byte of block 1 → block 1 fully garbled and the
        // same byte position of block 2 flipped.
        let mut ct = cbc_encrypt(&cipher, &iv, &pt);
        ct[20] ^= 0x01;
        let out = cbc_decrypt(&cipher, &iv, &ct).unwrap_or_else(|_| {
            // Padding may survive (corruption is far from the final block).
            panic!("padding block untouched, decode should succeed")
        });
        let cbc_garbled = out.iter().zip(pt.iter()).filter(|(a, b)| a != b).count();
        assert!(
            cbc_garbled >= 16,
            "CBC corruption must span a block: {cbc_garbled} bytes"
        );

        // OFB: the same corruption flips exactly one plaintext byte.
        let mut stream = pt.clone();
        Ofb::new(&cipher, &iv).apply(&mut stream);
        stream[20] ^= 0x01;
        Ofb::new(&cipher, &iv).apply(&mut stream);
        let ofb_garbled = stream.iter().zip(pt.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(ofb_garbled, 1, "OFB corruption must stay one byte");
    }
}
