//! AES (Rijndael) block cipher, FIPS-197, for 128- and 256-bit keys.
//!
//! Straightforward byte-oriented implementation: S-box substitution,
//! `ShiftRows`, `MixColumns` over GF(2⁸), and the standard key expansion.
//! The state is kept in FIPS column-major order: `state[r + 4c]` is row `r`,
//! column `c`. No table-based T-box optimisation is used; the goal is an
//! auditable reference implementation whose per-round structure mirrors the
//! cost model in [`crate::cost`].

use crate::BlockCipher;

/// The AES forward S-box (FIPS-197 Figure 7).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// The inverse S-box, derived from [`SBOX`] at compile time.
pub const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for the key schedule (enough for AES-256's 14 rounds).
pub(crate) const RCON: [u8; 15] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d,
];

/// Multiply by x in GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// General GF(2⁸) multiplication (used by `InvMixColumns`).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Expanded-key AES context, generic over the number of rounds.
///
/// `NR` is 10 for AES-128 and 14 for AES-256; the schedule holds `NR + 1`
/// 16-byte round keys.
#[derive(Clone)]
struct AesCore<const NR: usize> {
    round_keys: Vec<[u8; 16]>,
}

impl<const NR: usize> AesCore<NR> {
    fn expand(key: &[u8]) -> Self {
        let nk = key.len() / 4; // words in the key: 4 or 8
        let total_words = 4 * (NR + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[4 * j..4 * j + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        AesCore { round_keys }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    #[inline]
    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// Row `r` of the state is bytes `r, r+4, r+8, r+12`; rotate it left by `r`.
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            let t = a0 ^ a1 ^ a2 ^ a3;
            col[0] = a0 ^ t ^ xtime(a0 ^ a1);
            col[1] = a1 ^ t ^ xtime(a1 ^ a2);
            col[2] = a2 ^ t ^ xtime(a2 ^ a3);
            col[3] = a3 ^ t ^ xtime(a3 ^ a0);
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
            col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
            col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
            col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
        }
    }

    fn encrypt(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        let mut state = [0u8; 16];
        state.copy_from_slice(block);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        block.copy_from_slice(&state);
    }

    fn decrypt(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        let mut state = [0u8; 16];
        state.copy_from_slice(block);
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        block.copy_from_slice(&state);
    }
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    core: AesCore<10>,
}

impl Aes128 {
    /// Expand `key` into the round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        Aes128 {
            core: AesCore::expand(key),
        }
    }
}

impl BlockCipher for Aes128 {
    fn block_size(&self) -> usize {
        16
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        self.core.encrypt(block);
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        self.core.decrypt(block);
    }
}

/// AES with a 256-bit key (14 rounds).
#[derive(Clone)]
pub struct Aes256 {
    core: AesCore<14>,
}

impl Aes256 {
    /// Expand `key` into the round-key schedule.
    pub fn new(key: &[u8; 32]) -> Self {
        Aes256 {
            core: AesCore::expand(key),
        }
    }
}

impl BlockCipher for Aes256 {
    fn block_size(&self) -> usize {
        16
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        self.core.encrypt(block);
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        self.core.decrypt(block);
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes128(..)")
    }
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes256(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
        for (i, &b) in SBOX.iter().enumerate() {
            assert_eq!(INV_SBOX[b as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let cipher = Aes128::new(&key);
        let mut block = hex("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block, hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = hex("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, hex("8ea2b7ca516745bfeafc49904b496089"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block, hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn aes128_key_schedule_first_and_last_round_keys() {
        // FIPS-197 Appendix A.1: key 2b7e151628aed2a6abf7158809cf4f3c
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let c = Aes128::new(&key);
        assert_eq!(c.core.round_keys[0].to_vec(), hex("2b7e151628aed2a6abf7158809cf4f3c"));
        assert_eq!(c.core.round_keys[10].to_vec(), hex("d014f9a8c9ee2589e13f0cc8b6630ca6"));
    }

    #[test]
    fn mix_columns_roundtrip() {
        let mut state = [0u8; 16];
        for (i, b) in state.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(17).wrapping_add(3);
        }
        let original = state;
        AesCore::<10>::mix_columns(&mut state);
        assert_ne!(state, original);
        AesCore::<10>::inv_mix_columns(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn shift_rows_roundtrip() {
        let mut state = [0u8; 16];
        for (i, b) in state.iter_mut().enumerate() {
            *b = i as u8;
        }
        let original = state;
        AesCore::<10>::shift_rows(&mut state);
        assert_ne!(state, original);
        AesCore::<10>::inv_shift_rows(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn gmul_matches_known_products() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 Section 4.2 example)
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        // multiplication by 1 is identity, by 0 annihilates
        for b in 0..=255u8 {
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 0), 0);
        }
    }

    #[test]
    fn encrypt_differs_per_key() {
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[15] = 1;
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        Aes128::new(&k1).encrypt_block(&mut b1);
        Aes128::new(&k2).encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }
}
