//! Table-driven AES — the fast backend behind [`crate::CipherBackend::Fast`].
//!
//! The byte-oriented reference in [`crate::aes`] recomputes SubBytes,
//! ShiftRows and MixColumns field arithmetic for every byte of every round.
//! This implementation uses the classic T-table formulation instead: the
//! composition SubBytes∘MixColumns collapses into four 256-entry u32 lookup
//! tables (`TE0..TE3`, rotations of one another), so a full round is 16
//! table loads, 16 XORs and 4 round-key XORs. Decryption uses the
//! *equivalent inverse cipher* of FIPS-197 §5.3.5: the decryption round keys
//! are pushed through InvMixColumns once at key-schedule time, which lets
//! the inverse rounds use the same table shape (`TD0..TD3`).
//!
//! All tables are generated from the reference S-box by `const` evaluation —
//! nothing is hand-transcribed, so the only trusted inputs are the same
//! [`SBOX`]/[`INV_SBOX`] the reference implementation is validated against.
//! Bit-exact equivalence with the reference is pinned by the differential
//! tests at the bottom of this file and in `tests/` (FIPS-197 vectors plus
//! random blocks).

use crate::aes::{INV_SBOX, RCON, SBOX};
use crate::BlockCipher;

/// GF(2⁸) xtime, `const` so tables can be built at compile time.
const fn ct_xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// GF(2⁸) multiplication, `const` variant of the reference `gmul`.
const fn ct_gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = ct_xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// `TE0[x] = MixColumns column for S(x) in row 0` = `[2s, s, s, 3s]` packed
/// big-endian; `TE1..TE3` are byte rotations of `TE0`.
const TE0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        t[x] = ((ct_xtime(s) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | ((ct_xtime(s) ^ s) as u32);
        x += 1;
    }
    t
};
const TE1: [u32; 256] = rotate_table(&TE0, 8);
const TE2: [u32; 256] = rotate_table(&TE0, 16);
const TE3: [u32; 256] = rotate_table(&TE0, 24);

/// `TD0[x] = InvMixColumns column for IS(x)` = `[14s, 9s, 13s, 11s]` packed
/// big-endian; `TD1..TD3` are byte rotations of `TD0`.
const TD0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        let s = INV_SBOX[x];
        t[x] = ((ct_gmul(s, 0x0e) as u32) << 24)
            | ((ct_gmul(s, 0x09) as u32) << 16)
            | ((ct_gmul(s, 0x0d) as u32) << 8)
            | (ct_gmul(s, 0x0b) as u32);
        x += 1;
    }
    t
};
const TD1: [u32; 256] = rotate_table(&TD0, 8);
const TD2: [u32; 256] = rotate_table(&TD0, 16);
const TD3: [u32; 256] = rotate_table(&TD0, 24);

const fn rotate_table(src: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        t[x] = src[x].rotate_right(bits);
        x += 1;
    }
    t
}

/// InvMixColumns on one round-key word (used to build the equivalent
/// inverse cipher's decryption schedule).
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    let [a0, a1, a2, a3] = w.to_be_bytes();
    u32::from_be_bytes([
        ct_gmul(a0, 0x0e) ^ ct_gmul(a1, 0x0b) ^ ct_gmul(a2, 0x0d) ^ ct_gmul(a3, 0x09),
        ct_gmul(a0, 0x09) ^ ct_gmul(a1, 0x0e) ^ ct_gmul(a2, 0x0b) ^ ct_gmul(a3, 0x0d),
        ct_gmul(a0, 0x0d) ^ ct_gmul(a1, 0x09) ^ ct_gmul(a2, 0x0e) ^ ct_gmul(a3, 0x0b),
        ct_gmul(a0, 0x0b) ^ ct_gmul(a1, 0x0d) ^ ct_gmul(a2, 0x09) ^ ct_gmul(a3, 0x0e),
    ])
}

/// Maximum schedule length: 4·(14+1) words for AES-256.
const MAX_WORDS: usize = 60;

/// Table-driven AES context for 128- or 256-bit keys.
///
/// The round keys are expanded **once** at construction (word-oriented,
/// FIPS-197 §5.2) and stored both in encryption order (`ek`) and, pushed
/// through InvMixColumns, in the equivalent-inverse-cipher order (`dk`).
#[derive(Clone)]
pub struct AesFast {
    nr: usize,
    ek: [u32; MAX_WORDS],
    dk: [u32; MAX_WORDS],
}

impl AesFast {
    /// Expand `key` (16 or 32 bytes) into both round-key schedules.
    ///
    /// # Panics
    /// If `key.len()` is neither 16 nor 32.
    pub fn new(key: &[u8]) -> Self {
        let nk = match key.len() {
            16 => 4,
            32 => 8,
            n => panic!("AES key must be 16 or 32 bytes, got {n}"),
        };
        let nr = nk + 6;
        let words = 4 * (nr + 1);
        let mut ek = [0u32; MAX_WORDS];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            ek[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in nk..words {
            let mut temp = ek[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            ek[i] = ek[i - nk] ^ temp;
        }
        // Equivalent inverse cipher: reverse the per-round order and apply
        // InvMixColumns to every round key except the first and last.
        let mut dk = [0u32; MAX_WORDS];
        for round in 0..=nr {
            for j in 0..4 {
                let w = ek[4 * (nr - round) + j];
                dk[4 * round + j] = if round == 0 || round == nr {
                    w
                } else {
                    inv_mix_word(w)
                };
            }
        }
        AesFast { nr, ek, dk }
    }

    /// Number of rounds (10 or 14).
    pub fn rounds(&self) -> usize {
        self.nr
    }

    #[inline]
    fn encrypt16(&self, block: &mut [u8]) {
        let ek = &self.ek;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ ek[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ ek[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ ek[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ ek[3];
        for round in 1..self.nr {
            let rk = &ek[4 * round..4 * round + 4];
            // ShiftRows is folded into the column indices: column j pulls
            // row r from column j+r (mod 4).
            let t0 = TE0[(s0 >> 24) as usize]
                ^ TE1[((s1 >> 16) & 0xff) as usize]
                ^ TE2[((s2 >> 8) & 0xff) as usize]
                ^ TE3[(s3 & 0xff) as usize]
                ^ rk[0];
            let t1 = TE0[(s1 >> 24) as usize]
                ^ TE1[((s2 >> 16) & 0xff) as usize]
                ^ TE2[((s3 >> 8) & 0xff) as usize]
                ^ TE3[(s0 & 0xff) as usize]
                ^ rk[1];
            let t2 = TE0[(s2 >> 24) as usize]
                ^ TE1[((s3 >> 16) & 0xff) as usize]
                ^ TE2[((s0 >> 8) & 0xff) as usize]
                ^ TE3[(s1 & 0xff) as usize]
                ^ rk[2];
            let t3 = TE0[(s3 >> 24) as usize]
                ^ TE1[((s0 >> 16) & 0xff) as usize]
                ^ TE2[((s1 >> 8) & 0xff) as usize]
                ^ TE3[(s2 & 0xff) as usize]
                ^ rk[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows only, straight from the S-box.
        let rk = &ek[4 * self.nr..4 * self.nr + 4];
        let f = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            ((u32::from(SBOX[(a >> 24) as usize]) << 24)
                | (u32::from(SBOX[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(SBOX[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(SBOX[(d & 0xff) as usize]))
                ^ k
        };
        let t0 = f(s0, s1, s2, s3, rk[0]);
        let t1 = f(s1, s2, s3, s0, rk[1]);
        let t2 = f(s2, s3, s0, s1, rk[2]);
        let t3 = f(s3, s0, s1, s2, rk[3]);
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }

    #[inline]
    fn decrypt16(&self, block: &mut [u8]) {
        let dk = &self.dk;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ dk[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ dk[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ dk[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ dk[3];
        for round in 1..self.nr {
            let rk = &dk[4 * round..4 * round + 4];
            // InvShiftRows shifts right: column j pulls row r from column
            // j−r (mod 4).
            let t0 = TD0[(s0 >> 24) as usize]
                ^ TD1[((s3 >> 16) & 0xff) as usize]
                ^ TD2[((s2 >> 8) & 0xff) as usize]
                ^ TD3[(s1 & 0xff) as usize]
                ^ rk[0];
            let t1 = TD0[(s1 >> 24) as usize]
                ^ TD1[((s0 >> 16) & 0xff) as usize]
                ^ TD2[((s3 >> 8) & 0xff) as usize]
                ^ TD3[(s2 & 0xff) as usize]
                ^ rk[1];
            let t2 = TD0[(s2 >> 24) as usize]
                ^ TD1[((s1 >> 16) & 0xff) as usize]
                ^ TD2[((s0 >> 8) & 0xff) as usize]
                ^ TD3[(s3 & 0xff) as usize]
                ^ rk[2];
            let t3 = TD0[(s3 >> 24) as usize]
                ^ TD1[((s2 >> 16) & 0xff) as usize]
                ^ TD2[((s1 >> 8) & 0xff) as usize]
                ^ TD3[(s0 & 0xff) as usize]
                ^ rk[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        let rk = &dk[4 * self.nr..4 * self.nr + 4];
        let f = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            ((u32::from(INV_SBOX[(a >> 24) as usize]) << 24)
                | (u32::from(INV_SBOX[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(INV_SBOX[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(INV_SBOX[(d & 0xff) as usize]))
                ^ k
        };
        let t0 = f(s0, s3, s2, s1, rk[0]);
        let t1 = f(s1, s0, s3, s2, rk[1]);
        let t2 = f(s2, s1, s0, s3, rk[2]);
        let t3 = f(s3, s2, s1, s0, rk[3]);
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }
}

#[inline]
fn sub_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[a as usize],
        SBOX[b as usize],
        SBOX[c as usize],
        SBOX[d as usize],
    ])
}

impl BlockCipher for AesFast {
    fn block_size(&self) -> usize {
        16
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        self.encrypt16(block);
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        self.decrypt16(block);
    }
}

impl std::fmt::Debug for AesFast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AesFast(nr={}, ..)", self.nr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn te_tables_are_rotations() {
        for x in 0..256usize {
            assert_eq!(TE1[x], TE0[x].rotate_right(8));
            assert_eq!(TE2[x], TE0[x].rotate_right(16));
            assert_eq!(TE3[x], TE0[x].rotate_right(24));
            assert_eq!(TD1[x], TD0[x].rotate_right(8));
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1 — the same vector the reference pins.
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let cipher = AesFast::new(&key);
        assert_eq!(cipher.rounds(), 10);
        let mut block = hex("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block, hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let cipher = AesFast::new(&key);
        assert_eq!(cipher.rounds(), 14);
        let mut block = hex("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(block, hex("8ea2b7ca516745bfeafc49904b496089"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block, hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn matches_reference_on_structured_blocks() {
        // Every (key pattern, block pattern) pair must agree with the
        // byte-oriented reference in both directions.
        let mut k128 = [0u8; 16];
        let mut k256 = [0u8; 32];
        for seed in 0..32u8 {
            for (i, b) in k128.iter_mut().enumerate() {
                *b = seed.wrapping_mul(37).wrapping_add(i as u8 * 11);
            }
            for (i, b) in k256.iter_mut().enumerate() {
                *b = seed.wrapping_mul(29).wrapping_add(i as u8 * 7);
            }
            let fast128 = AesFast::new(&k128);
            let ref128 = Aes128::new(&k128);
            let fast256 = AesFast::new(&k256);
            let ref256 = Aes256::new(&k256);
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(101).wrapping_add(i as u8 * 13);
            }
            for (fast, reference) in [
                (&fast128, &ref128 as &dyn BlockCipher),
                (&fast256, &ref256 as &dyn BlockCipher),
            ] {
                let mut a = block;
                let mut b = block;
                fast.encrypt_block(&mut a);
                reference.encrypt_block(&mut b);
                assert_eq!(a, b, "encrypt diverged at seed {seed}");
                fast.decrypt_block(&mut a);
                reference.decrypt_block(&mut b);
                assert_eq!(a, b, "decrypt diverged at seed {seed}");
                assert_eq!(a, block, "roundtrip failed at seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "AES key must be 16 or 32 bytes")]
    fn bad_key_length_panics() {
        let _ = AesFast::new(&[0u8; 24]);
    }
}
