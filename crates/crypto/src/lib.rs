//! # thrifty-crypto
//!
//! From-scratch implementations of the three symmetric ciphers evaluated in
//! *Papageorgiou et al., "Resource Thrifty Secure Mobile Video Transfers on
//! Open WiFi Networks"* (CoNEXT 2013): **AES-128**, **AES-256** and
//! **3DES (EDE3)**, together with the **Output Feedback (OFB)** stream mode
//! the paper applies to each video segment independently (Section 5).
//!
//! The paper encrypts the RTP payload of selected packets with one of these
//! ciphers; the relative per-byte cost of the ciphers (3DES ≫ AES-256 >
//! AES-128) is what drives the delay and energy orderings of Figures 7–11.
//! This crate provides both the real ciphers (validated against FIPS-197 and
//! NIST test vectors) and a [`CostModel`] abstraction used by the analytical
//! and energy crates to predict encryption time without running the cipher.
//!
//! ## Quick start
//!
//! ```
//! use thrifty_crypto::{Algorithm, SegmentCipher};
//!
//! let key = [0x42u8; 32];
//! let cipher = SegmentCipher::new(Algorithm::Aes256, &key).unwrap();
//! let mut payload = b"a video segment".to_vec();
//! cipher.encrypt_segment(7, &mut payload); // segment index 7 selects the IV
//! assert_ne!(&payload, b"a video segment");
//! cipher.decrypt_segment(7, &mut payload);
//! assert_eq!(&payload, b"a video segment");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes;
pub mod aes_bitsliced;
pub mod aes_fast;
pub mod cbc;
pub mod cost;
pub mod ctr;
pub mod des;
pub mod des_fast;
pub mod ofb;

pub use aes::{Aes128, Aes256};
pub use aes_bitsliced::AesBitsliced;
pub use aes_fast::AesFast;
pub use cbc::{cbc_decrypt, cbc_encrypt, CbcError};
pub use ctr::Ctr;
pub use cost::{CostModel, CostSample};
pub use des::{Des, TripleDes};
pub use des_fast::{DesFast, TripleDesFast};
pub use ofb::Ofb;

/// A block cipher usable in OFB mode.
///
/// Only the forward (encryption) direction is required by OFB; the inverse
/// direction is provided because the test-suite validates both directions
/// against published vectors.
pub trait BlockCipher {
    /// Block size in bytes (16 for AES, 8 for DES/3DES).
    fn block_size(&self) -> usize;

    /// Encrypt one block in place. `block.len()` must equal
    /// [`block_size`](Self::block_size); implementations panic otherwise.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypt one block in place. Same length contract as
    /// [`encrypt_block`](Self::encrypt_block).
    fn decrypt_block(&self, block: &mut [u8]);
}

/// The symmetric-key algorithms evaluated in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// AES with a 128-bit key (FIPS-197, 10 rounds).
    Aes128,
    /// AES with a 256-bit key (FIPS-197, 14 rounds).
    Aes256,
    /// Triple DES in EDE3 configuration (ANSI X9.52), 168-bit key.
    TripleDes,
}

impl Algorithm {
    /// All algorithms, in the order the paper lists them.
    pub const ALL: [Algorithm; 3] = [Algorithm::Aes128, Algorithm::Aes256, Algorithm::TripleDes];

    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            Algorithm::Aes128 => 16,
            Algorithm::Aes256 => 32,
            Algorithm::TripleDes => 24,
        }
    }

    /// Block size in bytes.
    pub fn block_size(self) -> usize {
        match self {
            Algorithm::Aes128 | Algorithm::Aes256 => 16,
            Algorithm::TripleDes => 8,
        }
    }

    /// Relative software cost per byte, normalised to AES-128 = 1.
    ///
    /// These ratios model the paper's ARMv7 devices (Galaxy S-II / HTC
    /// Amaze class, no AES-NI): AES-256 runs 14 rounds instead of 10
    /// (×1.4), and 3DES performs three full DES passes over 8-byte blocks,
    /// roughly 6× the per-byte work of AES-128. The analytic delay/energy
    /// models are calibrated against those devices, so the constants stay
    /// put even though this repo's own backends measure differently on
    /// x86 (see EXPERIMENTS.md and `BENCH_cipher.json`): the fast
    /// table-driven backend shows AES-256 ≈ 1.3× and 3DES ≈ 11×, the
    /// byte-oriented reference backend ≈ 1.4× and ≈ 50×. The AES ratio is
    /// robust across implementations; the 3DES ratio depends on how much
    /// DES per-round work is precomputed, and the paper's 6× sits between
    /// the two extremes.
    pub fn relative_cost(self) -> f64 {
        match self {
            Algorithm::Aes128 => 1.0,
            Algorithm::Aes256 => 1.4,
            Algorithm::TripleDes => 6.0,
        }
    }

    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Aes128 => "AES128",
            Algorithm::Aes256 => "AES256",
            Algorithm::TripleDes => "3DES",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// The supplied key slice does not match the algorithm's key length.
    BadKeyLength {
        /// Bytes the algorithm expects.
        expected: usize,
        /// Bytes actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadKeyLength { expected, got } => {
                write!(f, "bad key length: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

/// Which implementation family a [`SegmentCipher`] dispatches to.
///
/// All backends are bit-exact (pinned by differential tests on FIPS/NIST
/// vectors and random inputs); they differ in speed and side-channel
/// profile:
///
/// * [`Reference`](CipherBackend::Reference) — the auditable byte/bit-level
///   implementations in [`aes`] and [`des`], whose per-round structure
///   mirrors the [`CostModel`]. Used by tests and as the differential
///   oracle.
/// * [`Fast`](CipherBackend::Fast) — the table-driven implementations in
///   [`aes_fast`] and [`des_fast`] (T-tables, fused SP tables, byte-lookup
///   IP/IP⁻¹). The default for every caller that moves real traffic.
/// * [`Bitsliced`](CipherBackend::Bitsliced) — the constant-time 64-lane
///   AES core in [`aes_bitsliced`]: no table lookups, so no cache-timing
///   leak, and the highest throughput of the three on batched packet
///   trains ([`SegmentCipher::encrypt_train`]). 3DES has no bitsliced
///   core; selecting `Bitsliced` for 3DES falls back to the (bit-exact)
///   fast implementation so the 3×3 algorithm/backend matrix stays total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherBackend {
    /// Byte/bit-oriented reference implementations.
    Reference,
    /// Table-driven implementations (the default).
    #[default]
    Fast,
    /// Constant-time bitsliced AES (fast fallback for 3DES).
    Bitsliced,
}

impl CipherBackend {
    /// Every backend, reference first.
    pub const ALL: [CipherBackend; 3] = [
        CipherBackend::Reference,
        CipherBackend::Fast,
        CipherBackend::Bitsliced,
    ];

    /// Label used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            CipherBackend::Reference => "reference",
            CipherBackend::Fast => "fast",
            CipherBackend::Bitsliced => "bitsliced",
        }
    }
}

impl std::fmt::Display for CipherBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The keyed block-cipher instance behind a [`SegmentCipher`] — one variant
/// per (algorithm, backend) pair. Kept private so callers select through
/// [`Algorithm`] × [`CipherBackend`] only.
#[derive(Clone)]
#[allow(clippy::large_enum_variant)] // AES-256's key schedule dominates; one
// cipher per transfer makes boxing pointless
enum Inner {
    RefAes128(Aes128),
    RefAes256(Aes256),
    RefTripleDes(TripleDes),
    FastAes(AesFast),
    FastTripleDes(TripleDesFast),
    BitslicedAes(AesBitsliced),
}

impl Inner {
    fn cipher(&self) -> &dyn BlockCipher {
        match self {
            Inner::RefAes128(c) => c,
            Inner::RefAes256(c) => c,
            Inner::RefTripleDes(c) => c,
            Inner::FastAes(c) => c,
            Inner::FastTripleDes(c) => c,
            Inner::BitslicedAes(c) => c,
        }
    }
}

/// A keyed cipher that encrypts/decrypts whole video segments in OFB mode.
///
/// The paper applies OFB "to each segment separately, and therefore a
/// possible error at the receiver does not propagate to the following
/// segments" (Section 5). We derive a distinct IV for every segment from its
/// sequence number, so encryption and decryption only need `(key, seq)`.
///
/// [`new`](SegmentCipher::new) selects the [`CipherBackend::Fast`]
/// table-driven implementations; [`with_backend`](SegmentCipher::with_backend)
/// pins a specific backend (the reference one exists as a differential
/// oracle and auditable specification).
#[derive(Clone)]
pub struct SegmentCipher {
    algorithm: Algorithm,
    backend: CipherBackend,
    inner: Inner,
}

impl SegmentCipher {
    /// Create a cipher for `algorithm`, keyed with the first
    /// `algorithm.key_len()` bytes of `key`, using the default
    /// ([`Fast`](CipherBackend::Fast)) backend.
    ///
    /// # Errors
    /// [`CryptoError::BadKeyLength`] if `key` is shorter than required.
    pub fn new(algorithm: Algorithm, key: &[u8]) -> Result<Self, CryptoError> {
        Self::with_backend(algorithm, key, CipherBackend::default())
    }

    /// Create a cipher pinned to a specific backend.
    ///
    /// # Errors
    /// [`CryptoError::BadKeyLength`] if `key` is shorter than required.
    pub fn with_backend(
        algorithm: Algorithm,
        key: &[u8],
        backend: CipherBackend,
    ) -> Result<Self, CryptoError> {
        let need = algorithm.key_len();
        if key.len() < need {
            return Err(CryptoError::BadKeyLength {
                expected: need,
                got: key.len(),
            });
        }
        let key = &key[..need];
        let inner = match (algorithm, backend) {
            (Algorithm::Aes128, CipherBackend::Reference) => {
                Inner::RefAes128(Aes128::new(key.try_into().unwrap()))
            }
            (Algorithm::Aes256, CipherBackend::Reference) => {
                Inner::RefAes256(Aes256::new(key.try_into().unwrap()))
            }
            (Algorithm::TripleDes, CipherBackend::Reference) => {
                Inner::RefTripleDes(TripleDes::new(key.try_into().unwrap()))
            }
            (Algorithm::Aes128 | Algorithm::Aes256, CipherBackend::Fast) => {
                Inner::FastAes(AesFast::new(key))
            }
            (Algorithm::Aes128 | Algorithm::Aes256, CipherBackend::Bitsliced) => {
                Inner::BitslicedAes(AesBitsliced::new(key))
            }
            // No bitsliced 3DES core exists; fall back to the bit-exact
            // fast implementation so every (algorithm, backend) pair keys.
            (Algorithm::TripleDes, CipherBackend::Fast | CipherBackend::Bitsliced) => {
                Inner::FastTripleDes(TripleDesFast::new(key.try_into().unwrap()))
            }
        };
        Ok(SegmentCipher {
            algorithm,
            backend,
            inner,
        })
    }

    /// The algorithm this cipher was constructed with.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The backend this cipher dispatches to.
    pub fn backend(&self) -> CipherBackend {
        self.backend
    }

    fn iv_for_segment(&self, seq: u64, iv: &mut [u8]) {
        // The IV is the encryption of the big-endian segment number padded
        // into one block — unique per segment under a fixed key, and
        // reconstructible by the receiver from the RTP sequence number alone.
        for b in iv.iter_mut() {
            *b = 0;
        }
        let n = iv.len();
        iv[n - 8..].copy_from_slice(&seq.to_be_bytes());
        self.inner.cipher().encrypt_block(iv);
    }

    /// Encrypt `data` in place as segment number `seq`.
    pub fn encrypt_segment(&self, seq: u64, data: &mut [u8]) {
        self.xor_keystream(seq, data);
    }

    /// Decrypt `data` in place as segment number `seq`.
    ///
    /// OFB is an involution: decryption is the same keystream XOR.
    pub fn decrypt_segment(&self, seq: u64, data: &mut [u8]) {
        self.xor_keystream(seq, data);
    }

    fn xor_keystream(&self, seq: u64, data: &mut [u8]) {
        let cipher = self.inner.cipher();
        let mut iv = [0u8; 16];
        let iv = &mut iv[..cipher.block_size()];
        self.iv_for_segment(seq, iv);
        Ofb::new(cipher, iv).apply(data);
    }

    /// Encrypt a whole packet train in place: segment `k` is encrypted as
    /// segment number `seqs[k]`, exactly as `encrypt_segment(seqs[k], …)`
    /// would — byte-identical output for every backend.
    ///
    /// On the [`Bitsliced`](CipherBackend::Bitsliced) backend this is the
    /// hot path: the per-segment IV blocks are derived in one batched
    /// encryption and up to [`aes_bitsliced::LANES`] OFB chains then run in
    /// lock-step, so a train costs barely more than one segment of serial
    /// work per 16 bytes of the longest segment. Other backends loop over
    /// [`encrypt_segment`](Self::encrypt_segment).
    ///
    /// # Panics
    /// If `seqs.len() != segments.len()`.
    pub fn encrypt_train(&self, seqs: &[u64], segments: &mut [&mut [u8]]) {
        assert_eq!(
            seqs.len(),
            segments.len(),
            "one sequence number per segment required"
        );
        match &self.inner {
            Inner::BitslicedAes(bs) => {
                let mut ivs: Vec<[u8; 16]> = seqs
                    .iter()
                    .map(|&seq| {
                        let mut iv = [0u8; 16];
                        iv[8..].copy_from_slice(&seq.to_be_bytes());
                        iv
                    })
                    .collect();
                // Same derivation as `iv_for_segment`, batched: the IV is
                // the encryption of the padded big-endian segment number.
                bs.encrypt_blocks(&mut ivs);
                bs.ofb_xor_train(&ivs, segments);
            }
            _ => {
                for (&seq, seg) in seqs.iter().zip(segments.iter_mut()) {
                    self.encrypt_segment(seq, seg);
                }
            }
        }
    }

    /// Decrypt a whole packet train in place (OFB is an involution, so
    /// this is the same keystream XOR as [`encrypt_train`](Self::encrypt_train)).
    ///
    /// # Panics
    /// If `seqs.len() != segments.len()`.
    pub fn decrypt_train(&self, seqs: &[u64], segments: &mut [&mut [u8]]) {
        self.encrypt_train(seqs, segments);
    }
}

impl std::fmt::Debug for SegmentCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SegmentCipher({}, {})", self.algorithm, self.backend)
    }
}

/// A [`SegmentCipher`] wrapped with telemetry counters — the instrumented
/// engine entry point the paper's Section 6 cost measurements correspond
/// to. Counter handles are acquired once at construction; each segment
/// operation then costs two relaxed atomic adds on top of the cipher work
/// (and two branches when the registry is disabled).
///
/// Counter names are keyed by algorithm so per-cipher byte totals can be
/// read straight from a snapshot, e.g. `crypto.bytes_encrypted.AES256`.
#[derive(Debug, Clone)]
pub struct MeteredSegmentCipher {
    cipher: SegmentCipher,
    segments_encrypted: thrifty_telemetry::Counter,
    bytes_encrypted: thrifty_telemetry::Counter,
    segments_decrypted: thrifty_telemetry::Counter,
    bytes_decrypted: thrifty_telemetry::Counter,
}

impl SegmentCipher {
    /// Attach telemetry counters from `metrics` to this cipher.
    pub fn metered(self, metrics: &thrifty_telemetry::MetricsRegistry) -> MeteredSegmentCipher {
        let alg = self.algorithm.name();
        MeteredSegmentCipher {
            segments_encrypted: metrics.counter(&format!("crypto.segments_encrypted.{alg}")),
            bytes_encrypted: metrics.counter(&format!("crypto.bytes_encrypted.{alg}")),
            segments_decrypted: metrics.counter(&format!("crypto.segments_decrypted.{alg}")),
            bytes_decrypted: metrics.counter(&format!("crypto.bytes_decrypted.{alg}")),
            cipher: self,
        }
    }
}

impl MeteredSegmentCipher {
    /// The wrapped cipher.
    pub fn cipher(&self) -> &SegmentCipher {
        &self.cipher
    }

    /// Encrypt `data` in place as segment `seq`, counting the work.
    pub fn encrypt_segment(&self, seq: u64, data: &mut [u8]) {
        self.cipher.encrypt_segment(seq, data);
        self.segments_encrypted.inc();
        self.bytes_encrypted.add(data.len() as u64);
    }

    /// Decrypt `data` in place as segment `seq`, counting the work.
    pub fn decrypt_segment(&self, seq: u64, data: &mut [u8]) {
        self.cipher.decrypt_segment(seq, data);
        self.segments_decrypted.inc();
        self.bytes_decrypted.add(data.len() as u64);
    }

    /// Encrypt a packet train in place, counting every segment and byte
    /// exactly as per-segment encryption would.
    ///
    /// # Panics
    /// If `seqs.len() != segments.len()`.
    pub fn encrypt_train(&self, seqs: &[u64], segments: &mut [&mut [u8]]) {
        self.cipher.encrypt_train(seqs, segments);
        self.segments_encrypted.add(segments.len() as u64);
        self.bytes_encrypted
            .add(segments.iter().map(|s| s.len() as u64).sum());
    }

    /// Decrypt a packet train in place, counting the work.
    ///
    /// # Panics
    /// If `seqs.len() != segments.len()`.
    pub fn decrypt_train(&self, seqs: &[u64], segments: &mut [&mut [u8]]) {
        self.cipher.decrypt_train(seqs, segments);
        self.segments_decrypted.add(segments.len() as u64);
        self.bytes_decrypted
            .add(segments.iter().map(|s| s.len() as u64).sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_metadata_is_consistent() {
        for alg in Algorithm::ALL {
            assert!(alg.key_len() >= 16);
            assert!(alg.block_size() == 8 || alg.block_size() == 16);
            assert!(alg.relative_cost() >= 1.0);
        }
        assert!(Algorithm::TripleDes.relative_cost() > Algorithm::Aes256.relative_cost());
        assert!(Algorithm::Aes256.relative_cost() > Algorithm::Aes128.relative_cost());
    }

    #[test]
    fn segment_cipher_roundtrip_all_algorithms() {
        let key = [0x5au8; 32];
        for alg in Algorithm::ALL {
            let c = SegmentCipher::new(alg, &key).unwrap();
            let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            c.encrypt_segment(3, &mut data);
            assert_ne!(data, original, "{alg} produced identity ciphertext");
            c.decrypt_segment(3, &mut data);
            assert_eq!(data, original, "{alg} roundtrip failed");
        }
    }

    #[test]
    fn different_segments_get_different_keystreams() {
        let key = [7u8; 32];
        for alg in Algorithm::ALL {
            let c = SegmentCipher::new(alg, &key).unwrap();
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            c.encrypt_segment(1, &mut a);
            c.encrypt_segment(2, &mut b);
            assert_ne!(a, b, "{alg}: segment IVs must differ");
        }
    }

    #[test]
    fn short_key_is_rejected() {
        let key = [0u8; 8];
        for alg in Algorithm::ALL {
            let err = SegmentCipher::new(alg, &key).unwrap_err();
            assert_eq!(
                err,
                CryptoError::BadKeyLength {
                    expected: alg.key_len(),
                    got: 8
                }
            );
            // Display impl should mention both numbers.
            let s = err.to_string();
            assert!(s.contains('8'));
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = [0xAAu8; 32];
        let c = SegmentCipher::new(Algorithm::Aes128, &key).unwrap();
        let dbg = format!("{c:?}");
        assert!(!dbg.contains("170")); // 0xAA
        assert!(dbg.contains("AES128"));
    }

    #[test]
    fn default_backend_is_fast() {
        let key = [1u8; 32];
        let c = SegmentCipher::new(Algorithm::Aes256, &key).unwrap();
        assert_eq!(c.backend(), CipherBackend::Fast);
        let r = SegmentCipher::with_backend(Algorithm::Aes256, &key, CipherBackend::Reference)
            .unwrap();
        assert_eq!(r.backend(), CipherBackend::Reference);
    }

    #[test]
    fn backends_produce_identical_segments() {
        // The tentpole guarantee: selecting a backend changes nothing but
        // speed — same IV derivation, same keystream, same ciphertext, for
        // every algorithm, backend, segment number, and length (including
        // partial blocks).
        let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(73).wrapping_add(9)).collect();
        for alg in Algorithm::ALL {
            let reference =
                SegmentCipher::with_backend(alg, &key, CipherBackend::Reference).unwrap();
            for backend in [CipherBackend::Fast, CipherBackend::Bitsliced] {
                let other = SegmentCipher::with_backend(alg, &key, backend).unwrap();
                for seq in [0u64, 1, 7, u32::MAX as u64 + 3] {
                    for len in [0usize, 1, 15, 16, 17, 100, 1452] {
                        let original: Vec<u8> =
                            (0..len).map(|i| (i as u8).wrapping_mul(31) ^ seq as u8).collect();
                        let mut a = original.clone();
                        let mut b = original.clone();
                        other.encrypt_segment(seq, &mut a);
                        reference.encrypt_segment(seq, &mut b);
                        assert_eq!(
                            a, b,
                            "{alg}/{backend} seq={seq} len={len}: ciphertext diverged"
                        );
                        // Cross-backend decrypt closes the loop.
                        reference.decrypt_segment(seq, &mut a);
                        assert_eq!(
                            a, original,
                            "{alg}/{backend} seq={seq} len={len}: roundtrip failed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn train_matches_sequential_segments_for_every_backend() {
        // `encrypt_train` is a pure batching API: for any backend the
        // output must equal per-segment encryption with the same sequence
        // numbers — including u16 wraparound patterns the pipeline feeds it.
        let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(29).wrapping_add(3)).collect();
        let seqs: Vec<u64> = vec![0, 1, 65535, 65536, 7, u32::MAX as u64, 65534, 2, 3, 4];
        let lens = [0usize, 1, 15, 16, 17, 100, 1452, 31, 33, 64];
        for alg in Algorithm::ALL {
            for backend in CipherBackend::ALL {
                let cipher = SegmentCipher::with_backend(alg, &key, backend).unwrap();
                let originals: Vec<Vec<u8>> = lens
                    .iter()
                    .enumerate()
                    .map(|(i, &len)| (0..len).map(|j| (i + j) as u8).collect())
                    .collect();
                let mut batched = originals.clone();
                {
                    let mut views: Vec<&mut [u8]> =
                        batched.iter_mut().map(|s| s.as_mut_slice()).collect();
                    cipher.encrypt_train(&seqs, &mut views);
                }
                for (i, original) in originals.iter().enumerate() {
                    let mut expected = original.clone();
                    cipher.encrypt_segment(seqs[i], &mut expected);
                    assert_eq!(
                        batched[i], expected,
                        "{alg}/{backend} segment {i}: train diverged from sequential"
                    );
                }
                // And the train decrypts itself (involution).
                {
                    let mut views: Vec<&mut [u8]> =
                        batched.iter_mut().map(|s| s.as_mut_slice()).collect();
                    cipher.decrypt_train(&seqs, &mut views);
                }
                assert_eq!(batched, originals, "{alg}/{backend}: train roundtrip failed");
            }
        }
    }

    #[test]
    fn metered_train_counts_match_sequential_metering() {
        use thrifty_telemetry::MetricsRegistry;
        let key = [0x21u8; 32];
        let metrics = MetricsRegistry::enabled();
        let c = SegmentCipher::with_backend(Algorithm::Aes128, &key, CipherBackend::Bitsliced)
            .expect("keyed")
            .metered(&metrics);
        let mut bufs: Vec<Vec<u8>> = vec![vec![1u8; 100], vec![2u8; 17], vec![3u8; 0]];
        {
            let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(|s| s.as_mut_slice()).collect();
            c.encrypt_train(&[5, 6, 7], &mut views);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("crypto.segments_encrypted.AES128"), 3);
        assert_eq!(snap.counter("crypto.bytes_encrypted.AES128"), 117);
    }

    #[test]
    fn metered_cipher_counts_segments_and_bytes() {
        use thrifty_telemetry::MetricsRegistry;
        let key = [9u8; 32];
        let metrics = MetricsRegistry::enabled();
        let c = SegmentCipher::new(Algorithm::Aes256, &key)
            .expect("32-byte key fits AES-256")
            .metered(&metrics);
        let mut data = vec![0u8; 100];
        c.encrypt_segment(1, &mut data);
        c.encrypt_segment(2, &mut data);
        c.decrypt_segment(2, &mut data);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("crypto.segments_encrypted.AES256"), 2);
        assert_eq!(snap.counter("crypto.bytes_encrypted.AES256"), 200);
        assert_eq!(snap.counter("crypto.segments_decrypted.AES256"), 1);
        assert_eq!(snap.counter("crypto.bytes_decrypted.AES256"), 100);
        // Metering must not change the keystream.
        let plain = SegmentCipher::new(Algorithm::Aes256, &key).expect("same key");
        let mut a = vec![7u8; 64];
        let mut b = vec![7u8; 64];
        c.encrypt_segment(5, &mut a);
        plain.encrypt_segment(5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn metered_cipher_on_disabled_registry_is_silent() {
        use thrifty_telemetry::MetricsRegistry;
        let metrics = MetricsRegistry::disabled();
        let c = SegmentCipher::new(Algorithm::TripleDes, &[3u8; 32])
            .expect("32-byte key fits 3DES")
            .metered(&metrics);
        let mut data = vec![1u8; 32];
        c.encrypt_segment(0, &mut data);
        assert!(metrics.snapshot().counters.is_empty());
        assert_eq!(c.cipher().algorithm(), Algorithm::TripleDes);
    }

    #[test]
    fn backend_metadata_is_consistent() {
        assert_eq!(CipherBackend::ALL.len(), 3);
        assert_eq!(CipherBackend::Reference.to_string(), "reference");
        assert_eq!(CipherBackend::Fast.to_string(), "fast");
        assert_eq!(CipherBackend::Bitsliced.to_string(), "bitsliced");
        // Every (algorithm, backend) pair must key successfully — 3DES
        // maps Bitsliced onto the fast core rather than failing.
        let key = [0x11u8; 32];
        for alg in Algorithm::ALL {
            for backend in CipherBackend::ALL {
                let c = SegmentCipher::with_backend(alg, &key, backend).unwrap();
                assert_eq!(c.backend(), backend);
            }
        }
    }
}
