//! Bitsliced AES-128/256 — constant-time by construction, 64 blocks per call.
//!
//! The third [`CipherBackend`](crate::CipherBackend) tier. Where the
//! [`aes_fast`](crate::aes_fast) backend trades side-channel hygiene for
//! speed (its T-tables index secret bytes into cache lines), this module
//! evaluates the cipher as a boolean circuit over 64-bit planes: **no
//! table lookup, no branch, no memory address ever depends on key or
//! plaintext bits**, and every logic instruction processes 64 independent
//! blocks at once.
//!
//! ## Representation
//!
//! A [`State`] is 8 bit-planes × 16 byte-positions. Plane `b`, position
//! `i` holds bit `b` (LSB-first) of state byte `i` — FIPS-197 column-major
//! order, `i = row + 4·col` — for all 64 lanes packed along the `u64`.
//! Transposition in/out of this layout is a pair of 64×64 bit transposes
//! per block (Hacker's Delight §7-3), amortised across the 64 lanes.
//!
//! ## The S-box circuit
//!
//! SubBytes uses the Boyar–Peralta 113-gate decomposition (top linear
//! layer → 32-gate shared nonlinear middle over GF(2⁴) → bottom linear
//! layer). The paper's convention is MSB-first (`x0` = bit 7), so circuit
//! wires map to planes reversed. The bottom linear layer here was solved
//! for this exact middle layer by Gaussian elimination over GF(2) against
//! the FIPS S-box table — [`tests::sbox_circuit_matches_table`] replays
//! that proof over all 256 inputs on every test run.
//!
//! ## Batched OFB
//!
//! OFB is serial *within* a segment (each keystream block is the
//! encryption of the previous one) but the pipeline encrypts whole packet
//! trains whose segments are independent. [`AesBitsliced::ofb_xor_train`]
//! therefore runs up to 64 segment chains in lock-step, keeping the
//! feedback in bitsliced form between blocks — the per-block transpose
//! only happens on the keystream copy that leaves the core.

use crate::aes::{Aes128, Aes256, SBOX};
use crate::BlockCipher;

/// Independent OFB chains (blocks) processed per bitsliced batch.
pub const LANES: usize = 64;

/// 8 bit-planes × 16 byte-positions; each `u64` spans the 64 lanes.
type State = [[u64; 16]; 8];

const ZERO_STATE: State = [[0u64; 16]; 8];

/// Bitsliced AES with a precomputed broadcast key schedule.
///
/// The forward direction (all OFB ever needs) is bitsliced and
/// constant-time; [`BlockCipher::decrypt_block`] delegates to the
/// reference implementation purely to satisfy the trait contract the
/// test-suite's inverse checks rely on.
#[derive(Clone)]
pub struct AesBitsliced {
    /// `nr + 1` round keys, each byte broadcast to all-ones/all-zero planes.
    round_keys: Vec<State>,
    /// Round count: 10 (AES-128) or 14 (AES-256).
    rounds: usize,
    /// Reference cipher backing the (non-hot-path) inverse direction.
    inverse: Inverse,
}

#[derive(Clone)]
enum Inverse {
    Aes128(Aes128),
    Aes256(Aes256),
}

impl AesBitsliced {
    /// Key the cipher. `key` must be 16 bytes (AES-128) or 32 (AES-256).
    pub fn new(key: &[u8]) -> Self {
        assert!(
            key.len() == 16 || key.len() == 32,
            "bitsliced AES takes a 16- or 32-byte key, got {}",
            key.len()
        );
        let scalar_keys = expand_round_keys(key);
        let rounds = scalar_keys.len() - 1;
        let round_keys = scalar_keys.iter().map(broadcast_key).collect();
        let inverse = if key.len() == 16 {
            let mut k = [0u8; 16];
            k.copy_from_slice(key);
            Inverse::Aes128(Aes128::new(&k))
        } else {
            let mut k = [0u8; 32];
            k.copy_from_slice(key);
            Inverse::Aes256(Aes256::new(&k))
        };
        AesBitsliced {
            round_keys,
            rounds,
            inverse,
        }
    }

    /// Encrypt up to [`LANES`] blocks per batch, in place.
    ///
    /// Any number of blocks is accepted; full 64-lane batches amortise the
    /// circuit best. Used for batched IV derivation and by the single-block
    /// [`BlockCipher`] shim.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        for chunk in blocks.chunks_mut(LANES) {
            let mut padded = [[0u8; 16]; LANES];
            padded[..chunk.len()].copy_from_slice(chunk);
            let mut s = load_state(&padded);
            self.encrypt_state(&mut s);
            store_state(&s, &mut padded);
            chunk.copy_from_slice(&padded[..chunk.len()]);
        }
    }

    /// XOR each segment with its OFB keystream, running up to [`LANES`]
    /// independent chains per batch.
    ///
    /// `ivs[k]` seeds segment `k`'s chain; segment lengths are arbitrary
    /// (ragged tails and zero-length segments included) and the result is
    /// byte-identical to applying [`crate::Ofb`] to each segment with the
    /// same IV. OFB is an involution, so this both encrypts and decrypts.
    pub fn ofb_xor_train(&self, ivs: &[[u8; 16]], segments: &mut [&mut [u8]]) {
        assert_eq!(
            ivs.len(),
            segments.len(),
            "one IV per segment required ({} IVs, {} segments)",
            ivs.len(),
            segments.len()
        );
        let mut start = 0;
        while start < ivs.len() {
            let n = (ivs.len() - start).min(LANES);
            let mut feedback = [[0u8; 16]; LANES];
            feedback[..n].copy_from_slice(&ivs[start..start + n]);
            let mut state = load_state(&feedback);
            let max_blocks = segments[start..start + n]
                .iter()
                .map(|seg| seg.len().div_ceil(16))
                .max()
                .unwrap_or(0);
            let mut offset = 0usize;
            for _ in 0..max_blocks {
                // The bitsliced state *is* the feedback register: encrypt
                // it, emit a transposed copy as keystream, keep going.
                self.encrypt_state(&mut state);
                store_state(&state, &mut feedback);
                for (lane, seg) in segments[start..start + n].iter_mut().enumerate() {
                    if offset < seg.len() {
                        let take = (seg.len() - offset).min(16);
                        for (dst, ks) in seg[offset..offset + take].iter_mut().zip(feedback[lane].iter()) {
                            *dst ^= ks;
                        }
                    }
                }
                offset += 16;
            }
            start += n;
        }
    }

    fn encrypt_state(&self, s: &mut State) {
        add_round_key(s, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(s);
            shift_mix_ark(s, &self.round_keys[round]);
        }
        sub_bytes(s);
        last_round(s, &self.round_keys[self.rounds]);
    }
}

impl std::fmt::Debug for AesBitsliced {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "AesBitsliced(rounds={})", self.rounds)
    }
}

impl BlockCipher for AesBitsliced {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let mut one = [[0u8; 16]; 1];
        one[0].copy_from_slice(block);
        self.encrypt_blocks(&mut one);
        block.copy_from_slice(&one[0]);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        // OFB never inverts the block cipher; the reference core satisfies
        // the trait's inverse contract for the differential test-suite.
        match &self.inverse {
            Inverse::Aes128(c) => c.decrypt_block(block),
            Inverse::Aes256(c) => c.decrypt_block(block),
        }
    }
}

/// FIPS-197 §5.2 key expansion to `nr + 1` 16-byte round keys.
///
/// Identical schedule to [`crate::aes::AesCore`]; recomputed here (with an
/// on-the-fly rcon chain) because only the scalar bytes are needed before
/// broadcasting to mask planes.
fn expand_round_keys(key: &[u8]) -> Vec<[u8; 16]> {
    let nk = key.len() / 4;
    let nr = nk + 6;
    let mut w = vec![[0u8; 4]; 4 * (nr + 1)];
    for (i, word) in w.iter_mut().take(nk).enumerate() {
        word.copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    let mut rcon: u8 = 1;
    for i in nk..4 * (nr + 1) {
        let mut t = w[i - 1];
        if i % nk == 0 {
            t = [
                SBOX[t[1] as usize] ^ rcon,
                SBOX[t[2] as usize],
                SBOX[t[3] as usize],
                SBOX[t[0] as usize],
            ];
            rcon = (rcon << 1) ^ if rcon & 0x80 != 0 { 0x1b } else { 0 };
        } else if nk > 6 && i % nk == 4 {
            t = t.map(|b| SBOX[b as usize]);
        }
        for (b, prev) in t.iter().enumerate() {
            w[i][b] = w[i - nk][b] ^ prev;
        }
    }
    (0..=nr)
        .map(|r| {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            rk
        })
        .collect()
}

/// Broadcast one scalar round key to mask planes: plane `b`, position `i`
/// is all-ones iff bit `b` of key byte `i` is set, so AddRoundKey is a
/// plain plane XOR for every lane at once.
fn broadcast_key(rk: &[u8; 16]) -> State {
    let mut s = ZERO_STATE;
    for (i, &byte) in rk.iter().enumerate() {
        for (b, plane) in s.iter_mut().enumerate() {
            if (byte >> b) & 1 == 1 {
                plane[i] = !0;
            }
        }
    }
    s
}

#[inline(always)]
fn add_round_key(s: &mut State, rk: &State) {
    for b in 0..8 {
        for i in 0..16 {
            s[b][i] ^= rk[b][i];
        }
    }
}

/// SubBytes: the Boyar–Peralta circuit on every byte position.
///
/// The circuit convention is MSB-first (`x0` = bit 7 of the byte), while
/// planes are LSB-first, so wires index planes reversed on the way in and
/// out. The loop body is scalar per position, which lets the compiler
/// vectorise the 16 independent positions.
#[inline(always)]
// The index walks one byte position across all eight planes at once, so an
// iterator over any single plane cannot express it.
#[allow(clippy::needless_range_loop)]
fn sub_bytes(s: &mut State) {
    for i in 0..16 {
        let x0 = s[7][i];
        let x1 = s[6][i];
        let x2 = s[5][i];
        let x3 = s[4][i];
        let x4 = s[3][i];
        let x5 = s[2][i];
        let x6 = s[1][i];
        let x7 = s[0][i];
        // Top linear layer: expand 8 inputs to the 22 shared signals.
        let y14 = x3 ^ x5;
        let y13 = x0 ^ x6;
        let y9 = x0 ^ x3;
        let y8 = x0 ^ x5;
        let t0 = x1 ^ x2;
        let y1 = t0 ^ x7;
        let y4 = y1 ^ x3;
        let y12 = y13 ^ y14;
        let y2 = y1 ^ x0;
        let y5 = y1 ^ x6;
        let y3 = y5 ^ y8;
        let t1 = x4 ^ y12;
        let y15 = t1 ^ x5;
        let y20 = t1 ^ x1;
        let y6 = y15 ^ x7;
        let y10 = y15 ^ t0;
        let y11 = y20 ^ y9;
        let y7 = x7 ^ y11;
        let y17 = y10 ^ y11;
        let y19 = y10 ^ y8;
        let y16 = t0 ^ y11;
        let y21 = y13 ^ y16;
        let y18 = x0 ^ y16;
        // Shared nonlinear middle: the GF(2^4) inversion tower.
        let t2 = y12 & y15;
        let t3 = y3 & y6;
        let t4 = t3 ^ t2;
        let t5 = y4 & x7;
        let t6 = t5 ^ t2;
        let t7 = y13 & y16;
        let t8 = y5 & y1;
        let t9 = t8 ^ t7;
        let t10 = y2 & y7;
        let t11 = t10 ^ t7;
        let t12 = y9 & y11;
        let t13 = y14 & y17;
        let t14 = t13 ^ t12;
        let t15 = y8 & y10;
        let t16 = t15 ^ t12;
        let t17 = t4 ^ t14;
        let t18 = t6 ^ t16;
        let t19 = t9 ^ t14;
        let t20 = t11 ^ t16;
        let t21 = t17 ^ y20;
        let t22 = t18 ^ y19;
        let t23 = t19 ^ y21;
        let t24 = t20 ^ y18;
        let t25 = t21 ^ t22;
        let t26 = t21 & t23;
        let t27 = t24 ^ t26;
        let t28 = t25 & t27;
        let t29 = t28 ^ t22;
        let t30 = t23 ^ t24;
        let t31 = t22 ^ t26;
        let t32 = t31 & t30;
        let t33 = t32 ^ t24;
        let t34 = t23 ^ t33;
        let t35 = t27 ^ t33;
        let t36 = t24 & t35;
        let t37 = t36 ^ t34;
        let t38 = t27 ^ t36;
        let t39 = t29 & t38;
        let t40 = t25 ^ t39;
        let t41 = t40 ^ t37;
        let t42 = t29 ^ t33;
        let t43 = t29 ^ t40;
        let t44 = t33 ^ t37;
        let t45 = t42 ^ t41;
        let z0 = t44 & y15;
        let z1 = t37 & y6;
        let z2 = t33 & x7;
        let z3 = t43 & y16;
        let z4 = t40 & y1;
        let z5 = t29 & y7;
        let z6 = t42 & y11;
        let z7 = t45 & y17;
        let z8 = t41 & y10;
        let z9 = t44 & y12;
        let z10 = t37 & y3;
        let z11 = t33 & y4;
        let z12 = t43 & y13;
        let z13 = t40 & y5;
        let z14 = t29 & y2;
        let z15 = t42 & y9;
        let z16 = t45 & y14;
        let z17 = t41 & y8;
        // Bottom linear layer: solved over GF(2) against the FIPS table for
        // this exact middle layer (see module docs); XNORs fold the S-box
        // constant 0x63.
        let p0 = z15 ^ z16;
        let p1 = z9 ^ z10 ^ p0;
        let p2 = z0 ^ z1;
        let p3 = z3 ^ z4;
        let p4 = z6 ^ z7;
        let p5 = z0 ^ z2;
        let p6 = z7 ^ z8;
        let p7 = z12 ^ z13;
        let p8 = z12 ^ z14;
        let p9 = z4 ^ z5;
        let s0 = p3 ^ p4 ^ p1;
        let s1 = !(p2 ^ p4 ^ p1);
        let s2 = !(p5 ^ (z6 ^ z8) ^ p8 ^ (z15 ^ z17));
        let s3 = p2 ^ p3 ^ p1;
        let s4 = p9 ^ (z1 ^ z2) ^ p1;
        let s5 = p5 ^ p3 ^ p6 ^ (z10 ^ z11) ^ p8 ^ p0;
        let s6 = !(p9 ^ p6 ^ p7 ^ p0);
        let s7 = !(p5 ^ (z3 ^ z5) ^ p7 ^ p0);
        s[7][i] = s0;
        s[6][i] = s1;
        s[5][i] = s2;
        s[4][i] = s3;
        s[3][i] = s4;
        s[2][i] = s5;
        s[1][i] = s6;
        s[0][i] = s7;
    }
}

/// Fused ShiftRows + MixColumns + AddRoundKey.
///
/// ShiftRows folds into the source index: post-SR position `r + 4c` holds
/// pre-SR `r + 4((c+r) % 4)`. MixColumns is the `tot` trick
/// (`out_r = a_r ^ tot ^ xtime(a_r ^ a_{r+1})`); `xtime` is one plane
/// shift with the 0x1b reduction tapped from plane 7 into planes 0,1,3,4.
#[inline(always)]
fn shift_mix_ark(s: &mut State, rk: &State) {
    let mut o = ZERO_STATE;
    for c in 0..4 {
        let src = [
            4 * c,
            1 + 4 * ((c + 1) % 4),
            2 + 4 * ((c + 2) % 4),
            3 + 4 * ((c + 3) % 4),
        ];
        for b in 0..8 {
            let a0 = s[b][src[0]];
            let a1 = s[b][src[1]];
            let a2 = s[b][src[2]];
            let a3 = s[b][src[3]];
            let tot = a0 ^ a1 ^ a2 ^ a3;
            o[b][4 * c] = a0 ^ tot;
            o[b][4 * c + 1] = a1 ^ tot;
            o[b][4 * c + 2] = a2 ^ tot;
            o[b][4 * c + 3] = a3 ^ tot;
        }
        for b in (1..8).rev() {
            for r in 0..4 {
                let t = s[b - 1][src[r]] ^ s[b - 1][src[(r + 1) % 4]];
                o[b][4 * c + r] ^= t;
            }
        }
        for r in 0..4 {
            let t7 = s[7][src[r]] ^ s[7][src[(r + 1) % 4]];
            o[0][4 * c + r] ^= t7;
            o[1][4 * c + r] ^= t7;
            o[3][4 * c + r] ^= t7;
            o[4][4 * c + r] ^= t7;
        }
    }
    for b in 0..8 {
        for i in 0..16 {
            s[b][i] = o[b][i] ^ rk[b][i];
        }
    }
}

/// Final round: ShiftRows (no MixColumns) + AddRoundKey.
#[inline(always)]
fn last_round(s: &mut State, rk: &State) {
    let mut o = ZERO_STATE;
    for b in 0..8 {
        for c in 0..4 {
            for r in 0..4 {
                o[b][r + 4 * c] = s[b][r + 4 * ((c + r) % 4)];
            }
        }
    }
    for b in 0..8 {
        for i in 0..16 {
            s[b][i] = o[b][i] ^ rk[b][i];
        }
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3 swapmove).
fn transpose64(m: &mut [u64; LANES]) {
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < LANES {
            let t = (m[k + j] ^ (m[k] >> j)) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j.max(1);
    }
}

/// Gather 64 blocks into bitsliced planes: two 64×64 transposes, one per
/// 8-byte half of the block.
fn load_state(blocks: &[[u8; 16]; LANES]) -> State {
    let mut s = ZERO_STATE;
    for half in 0..2 {
        let mut m = [0u64; LANES];
        for (j, block) in blocks.iter().enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&block[8 * half..8 * half + 8]);
            m[j] = u64::from_le_bytes(word);
        }
        transpose64(&mut m);
        for p in 0..8 {
            for b in 0..8 {
                s[b][8 * half + p] = m[8 * p + b];
            }
        }
    }
    s
}

/// Scatter bitsliced planes back into 64 blocks (inverse of [`load_state`]).
fn store_state(s: &State, blocks: &mut [[u8; 16]; LANES]) {
    for half in 0..2 {
        let mut m = [0u64; LANES];
        for p in 0..8 {
            for b in 0..8 {
                m[8 * p + b] = s[b][8 * half + p];
            }
        }
        transpose64(&mut m);
        for (j, block) in blocks.iter_mut().enumerate() {
            block[8 * half..8 * half + 8].copy_from_slice(&m[j].to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ofb;

    /// Cheap deterministic byte stream for differential tests.
    fn xorshift_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn sbox_circuit_matches_table() {
        // Replay the GF(2) solvability proof: run each of the 256 byte
        // values through the circuit (spread over lanes and positions) and
        // compare to the FIPS table.
        let mut blocks = [[0u8; 16]; LANES];
        for v in 0..256usize {
            blocks[v / 4][v % 4] = v as u8;
        }
        let mut s = load_state(&blocks);
        sub_bytes(&mut s);
        store_state(&s, &mut blocks);
        for v in 0..256usize {
            assert_eq!(
                blocks[v / 4][v % 4],
                SBOX[v],
                "S-box circuit wrong at input {v:#04x}"
            );
        }
    }

    #[test]
    fn transpose_roundtrips_and_load_store_invert() {
        let mut blocks = [[0u8; 16]; LANES];
        for (j, block) in blocks.iter_mut().enumerate() {
            let bytes = xorshift_bytes(j as u64 + 1, 16);
            block.copy_from_slice(&bytes);
        }
        let original = blocks;
        let s = load_state(&blocks);
        store_state(&s, &mut blocks);
        assert_eq!(blocks, original);
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [[
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ]];
        AesBitsliced::new(&key).encrypt_blocks(&mut block);
        assert_eq!(
            block[0],
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19,
                0x6a, 0x0b, 0x32
            ]
        );
    }

    #[test]
    fn fips197_appendix_c_known_answers() {
        // Plaintext 00 11 22 … ff shared by both appendix C vectors.
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        // C.1: AES-128, key 000102...0f.
        let key128: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block = [pt];
        AesBitsliced::new(&key128).encrypt_blocks(&mut block);
        assert_eq!(
            block[0],
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a
            ]
        );
        // C.3: AES-256, key 000102...1f.
        let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut block = [pt];
        AesBitsliced::new(&key256).encrypt_blocks(&mut block);
        assert_eq!(
            block[0],
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b,
                0x49, 0x60, 0x89
            ]
        );
    }

    #[test]
    fn differential_vs_reference_over_full_batches() {
        for key_len in [16usize, 32] {
            let key = xorshift_bytes(key_len as u64 * 7919, key_len);
            let bs = AesBitsliced::new(&key);
            let mut blocks = [[0u8; 16]; LANES];
            for (j, block) in blocks.iter_mut().enumerate() {
                block.copy_from_slice(&xorshift_bytes(1000 + j as u64, 16));
            }
            let mut expected = blocks;
            for block in expected.iter_mut() {
                match key_len {
                    16 => Aes128::new(&key.clone().try_into().unwrap()).encrypt_block(block),
                    _ => Aes256::new(&key.clone().try_into().unwrap()).encrypt_block(block),
                }
            }
            bs.encrypt_blocks(&mut blocks);
            assert_eq!(blocks, expected, "key_len={key_len}");
        }
    }

    #[test]
    fn partial_batches_match_single_blocks() {
        let key = xorshift_bytes(42, 16);
        let bs = AesBitsliced::new(&key);
        for n in [1usize, 2, 3, 63, 65, 130] {
            let mut blocks: Vec<[u8; 16]> = (0..n)
                .map(|j| {
                    let mut b = [0u8; 16];
                    b.copy_from_slice(&xorshift_bytes(j as u64 + 5, 16));
                    b
                })
                .collect();
            let mut expected = blocks.clone();
            for block in expected.iter_mut() {
                bs.encrypt_block(block);
            }
            bs.encrypt_blocks(&mut blocks);
            assert_eq!(blocks, expected, "n={n}");
        }
    }

    #[test]
    fn block_cipher_shim_inverts() {
        for key_len in [16usize, 32] {
            let key = xorshift_bytes(9 * key_len as u64, key_len);
            let bs = AesBitsliced::new(&key);
            let original = xorshift_bytes(77, 16);
            let mut block = original.clone();
            bs.encrypt_block(&mut block);
            assert_ne!(block, original);
            bs.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn ofb_train_matches_per_segment_ofb() {
        // Ragged lengths, zero-length segments, and more segments than
        // lanes — every lane must match a fresh scalar OFB chain.
        let key = xorshift_bytes(31337, 32);
        let bs = AesBitsliced::new(&key);
        let reference = Aes256::new(&key.clone().try_into().unwrap());
        let lens: Vec<usize> = (0..150)
            .map(|i| [0usize, 1, 15, 16, 17, 31, 33, 100, 1452][i % 9])
            .collect();
        let ivs: Vec<[u8; 16]> = (0..lens.len())
            .map(|i| {
                let mut iv = [0u8; 16];
                iv.copy_from_slice(&xorshift_bytes(999 + i as u64, 16));
                iv
            })
            .collect();
        let originals: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| xorshift_bytes(5000 + i as u64, len))
            .collect();
        let mut batched = originals.clone();
        {
            let mut views: Vec<&mut [u8]> =
                batched.iter_mut().map(|seg| seg.as_mut_slice()).collect();
            bs.ofb_xor_train(&ivs, &mut views);
        }
        for (i, original) in originals.iter().enumerate() {
            let mut expected = original.clone();
            Ofb::new(&reference, &ivs[i]).apply(&mut expected);
            assert_eq!(batched[i], expected, "segment {i} len={}", lens[i]);
        }
    }
}
