//! Memoized analytic solves for the multi-flow hot loop.
//!
//! An N-flow cell asks for the same channel operating point and the same
//! queue solution once per flow; re-running the DCF fixed point and the
//! MMPP/G/1 series expansion N times would dominate the sweep. The
//! [`SolveCache`] memoizes three solve families, keyed by
//! (policy × station count × PHY × scenario fingerprint):
//!
//! * [`DcfModel::try_solve`] → [`DcfSolution`] — the contention coupling of
//!   eqs. 4–9;
//! * [`DelayModel::predict`] → [`DelayPrediction`] — the 2-MMPP/G/1 delay
//!   of eq. 19;
//! * [`MmppNG1::solve`] → [`QueueSolutionN`] — the n-state solver on the
//!   same scenario, used as a cross-solver consistency gate.
//!
//! Every lookup increments either [`SolveCache::HITS`] or
//! [`SolveCache::MISSES`] in the caller's `MetricsRegistry`; FIFO
//! evictions past the capacity bound increment [`SolveCache::EVICTIONS`].
//! Computation happens **under the map lock**, so concurrent first lookups
//! of a key serialise: exactly one miss per distinct key, no matter how
//! many shard threads race — which keeps the counters (and therefore the
//! metered snapshot) bit-reproducible. Because solves are pure, the
//! capacity bound can change *when* work happens but never *what* any
//! caller gets back — figure values are capacity-invariant by
//! construction, and the engine tests pin it.
//!
//! [`DcfModel::try_solve`]: thrifty_net::dcf::DcfModel::try_solve
//! [`DelayModel::predict`]: thrifty_analytic::delay::DelayModel::predict
//! [`MmppNG1::solve`]: thrifty_queueing::solver_n::MmppNG1::solve

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use thrifty_analytic::delay::{DelayModel, DelayPrediction};
use thrifty_analytic::params::ScenarioParams;
use thrifty_analytic::policy::{EncryptionMode, Policy};
use thrifty_net::dcf::{DcfError, DcfModel, DcfSolution};
use thrifty_queueing::matrix::Matrix;
use thrifty_queueing::solver::SolveError;
use thrifty_queueing::solver_n::{MmppN, MmppNG1, QueueSolutionN};
use thrifty_telemetry::{MetricsRegistry, Snapshot};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable textual key for an encryption mode: variant tag plus the exact
/// bit pattern of any fraction (labels round, bits do not).
fn mode_key(mode: EncryptionMode) -> String {
    match mode {
        EncryptionMode::None => "none".into(),
        EncryptionMode::All => "all".into(),
        EncryptionMode::IFrames => "i".into(),
        EncryptionMode::PFrames => "p".into(),
        EncryptionMode::IPlusFractionP(a) => format!("i+p:{:016x}", a.to_bits()),
        EncryptionMode::FractionI(b) => format!("fi:{:016x}", b.to_bits()),
    }
}

/// Fingerprint of everything a DCF solve depends on: station count, the PER
/// bit pattern and every PHY field (via the exact `Debug` rendering, which
/// round-trips f64s).
fn dcf_key(model: &DcfModel) -> String {
    format!(
        "dcf/{}/{:016x}/{:016x}",
        model.stations,
        model.channel_per.to_bits(),
        fnv1a(format!("{:?}", model.phy).as_bytes())
    )
}

/// Fingerprint of a full scenario (MMPP, packet stats, device, jitter, DCF
/// operating point, PHY — everything a queue solve reads). `Debug` of f64
/// uses shortest-round-trip formatting, so equal fingerprints mean equal
/// bit patterns.
fn scenario_fingerprint(params: &ScenarioParams) -> u64 {
    fnv1a(format!("{params:?}").as_bytes())
}

fn queue_key(kind: &str, params: &ScenarioParams, stations: usize, policy: Policy) -> String {
    format!(
        "{kind}/{}/{}/{}/{:016x}",
        policy.algorithm.name(),
        mode_key(policy.mode),
        stations,
        scenario_fingerprint(params)
    )
}

/// One bounded memo family: the map plus a FIFO of key insertion order.
///
/// Eviction is strictly first-in-first-out: when an insert pushes the map
/// past `capacity`, the **oldest inserted key** leaves. Under the
/// serialised compute-under-lock discipline the insertion order — and with
/// it the eviction sequence — is a pure function of the lookup sequence,
/// so a bounded cache stays exactly as reproducible as an unbounded one.
struct BoundedMemo<T> {
    map: BTreeMap<String, T>,
    order: VecDeque<String>,
}

impl<T> Default for BoundedMemo<T> {
    fn default() -> Self {
        BoundedMemo {
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }
}

/// A thread-safe memo table for the three solve families the fleet engine
/// consults per flow. One cache is scoped to one cell (one registry), so
/// the hit/miss counters it reports are deterministic.
///
/// The table is **bounded**: each family holds at most
/// [`capacity`](Self::capacity) entries (default
/// [`DEFAULT_CAPACITY`](Self::DEFAULT_CAPACITY)), evicted FIFO. Solves are
/// pure functions of their key, so an eviction can never change a value
/// any caller observes — a re-query after eviction recomputes the
/// identical bits and costs one extra [`MISSES`](Self::MISSES) (plus one
/// [`EVICTIONS`](Self::EVICTIONS) at eviction time). The engine's
/// regression tests pin that a pathologically small bound leaves every
/// figure value bit-identical.
pub struct SolveCache {
    dcf: Mutex<BoundedMemo<DcfSolution>>,
    delay: Mutex<BoundedMemo<DelayPrediction>>,
    queue_n: Mutex<BoundedMemo<QueueSolutionN>>,
    capacity: usize,
}

impl Default for SolveCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl SolveCache {
    /// Telemetry counter incremented on every cache hit.
    pub const HITS: &'static str = "fleet.solve_cache.hits";
    /// Telemetry counter incremented on every cache miss.
    pub const MISSES: &'static str = "fleet.solve_cache.misses";
    /// Telemetry counter incremented on every FIFO eviction.
    pub const EVICTIONS: &'static str = "fleet.solve_cache.evictions";
    /// Default per-family capacity — far above any real sweep's working
    /// set (a cell touches ~3 keys; the full figure suite a few dozen), so
    /// the bound only matters as a worst-case memory cap.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` entries per solve family.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a solve cache needs room for one entry");
        SolveCache {
            dcf: Mutex::default(),
            delay: Mutex::default(),
            queue_n: Mutex::default(),
            capacity,
        }
    }

    /// The per-family entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn memo<T: Clone, E>(
        map: &Mutex<BoundedMemo<T>>,
        capacity: usize,
        key: String,
        metrics: &MetricsRegistry,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        // Holding the lock across `compute` serialises concurrent first
        // lookups: one miss per distinct key, deterministically.
        let mut guard = map.lock().expect("solve cache poisoned");
        if let Some(v) = guard.map.get(&key) {
            metrics.counter(Self::HITS).inc();
            return Ok(v.clone());
        }
        metrics.counter(Self::MISSES).inc();
        let v = compute()?;
        guard.map.insert(key.clone(), v.clone());
        guard.order.push_back(key);
        while guard.map.len() > capacity {
            let oldest = guard
                .order
                .pop_front()
                .expect("order queue tracks every inserted key");
            guard.map.remove(&oldest);
            metrics.counter(Self::EVICTIONS).inc();
        }
        Ok(v)
    }

    /// Memoized [`DcfModel::try_solve`]: the operating point for a station
    /// count / PER / PHY triple. Errors (degenerate models) are not cached.
    pub fn dcf(
        &self,
        model: &DcfModel,
        metrics: &MetricsRegistry,
    ) -> Result<DcfSolution, DcfError> {
        Self::memo(&self.dcf, self.capacity, dcf_key(model), metrics, || {
            model.try_solve()
        })
    }

    /// Memoized [`DelayModel::predict`] for a (scenario, policy) pair —
    /// `stations` keys the contention operating point the scenario was
    /// calibrated for.
    pub fn delay(
        &self,
        params: &ScenarioParams,
        stations: usize,
        policy: Policy,
        metrics: &MetricsRegistry,
    ) -> Result<DelayPrediction, SolveError> {
        Self::memo(
            &self.delay,
            self.capacity,
            queue_key("delay", params, stations, policy),
            metrics,
            || DelayModel::new(params).predict(policy),
        )
    }

    /// Memoized n-state solve of the same queue: the scenario's 2-MMPP
    /// embedded as a 2-phase [`MmppN`] through the general [`MmppNG1`]
    /// solver. Agrees with [`delay`](Self::delay) to ~1e-9 relative — the
    /// engine uses the pair as a cross-solver consistency gate.
    pub fn queue_n(
        &self,
        params: &ScenarioParams,
        stations: usize,
        policy: Policy,
        metrics: &MetricsRegistry,
    ) -> Result<QueueSolutionN, SolveError> {
        Self::memo(
            &self.queue_n,
            self.capacity,
            queue_key("queue_n", params, stations, policy),
            metrics,
            || {
                let m = &params.mmpp;
                let generator = Matrix::from_rows(&[&[-m.p1, m.p1], &[m.p2, -m.p2]]);
                let mmpp_n = MmppN::new(generator, vec![m.lambda1, m.lambda2]);
                let service = DelayModel::new(params).service_distribution(policy);
                MmppNG1::new(mmpp_n, service).solve()
            },
        )
    }

    /// Number of distinct solutions currently memoized (all families).
    pub fn len(&self) -> usize {
        self.dcf.lock().expect("solve cache poisoned").map.len()
            + self.delay.lock().expect("solve cache poisoned").map.len()
            + self.queue_n.lock().expect("solve cache poisoned").map.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate recorded in a snapshot's cache counters; `None` when the
    /// snapshot saw no cache traffic.
    pub fn hit_rate(snapshot: &Snapshot) -> Option<f64> {
        let hits = snapshot.counter(Self::HITS);
        let misses = snapshot.counter(Self::MISSES);
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_analytic::params::SAMSUNG_GALAXY_S2;
    use thrifty_crypto::Algorithm;
    use thrifty_net::dcf::PhyParams;
    use thrifty_video::motion::MotionLevel;

    fn scenario(stations: usize) -> ScenarioParams {
        ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, stations, 0.92)
    }

    #[test]
    fn dcf_hits_after_first_solve() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let model = DcfModel::new(9, 0.02, PhyParams::g_54mbps());
        let a = cache.dcf(&model, &metrics).unwrap();
        let b = cache.dcf(&model, &metrics).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.packet_success_rate.to_bits(), model.solve().packet_success_rate.to_bits());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::MISSES), 1);
        assert_eq!(snap.counter(SolveCache::HITS), 1);
        assert_eq!(SolveCache::hit_rate(&snap), Some(0.5));
    }

    #[test]
    fn distinct_station_counts_are_distinct_keys() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        for n in [5usize, 6, 29, 54, 104] {
            let model = DcfModel::new(n, 0.02, PhyParams::g_54mbps());
            cache.dcf(&model, &metrics).unwrap();
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 5);
        assert_eq!(metrics.snapshot().counter(SolveCache::HITS), 0);
    }

    #[test]
    fn degenerate_dcf_is_an_error_and_not_cached() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let bad = DcfModel {
            stations: 0,
            channel_per: 0.0,
            phy: PhyParams::g_54mbps(),
        };
        assert!(cache.dcf(&bad, &metrics).is_err());
        assert!(cache.dcf(&bad, &metrics).is_err());
        assert!(cache.is_empty());
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 2);
    }

    #[test]
    fn delay_cache_returns_the_solver_value() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let policy = Policy::new(Algorithm::Aes256, EncryptionMode::IFrames);
        let cached = cache.delay(&params, 9, policy, &metrics).unwrap();
        let direct = DelayModel::new(&params).predict(policy).unwrap();
        assert_eq!(cached.mean_delay_s.to_bits(), direct.mean_delay_s.to_bits());
        // Second lookup hits.
        cache.delay(&params, 9, policy, &metrics).unwrap();
        assert_eq!(metrics.snapshot().counter(SolveCache::HITS), 1);
    }

    #[test]
    fn policies_do_not_collide() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let a = cache
            .delay(&params, 9, Policy::new(Algorithm::Aes256, EncryptionMode::All), &metrics)
            .unwrap();
        let b = cache
            .delay(&params, 9, Policy::new(Algorithm::Aes256, EncryptionMode::None), &metrics)
            .unwrap();
        assert!(a.mean_delay_s > b.mean_delay_s, "all {} none {}", a.mean_delay_s, b.mean_delay_s);
        // Nearby fractions key separately by bit pattern.
        let c = cache
            .delay(
                &params,
                9,
                Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2)),
                &metrics,
            )
            .unwrap();
        let d = cache
            .delay(
                &params,
                9,
                Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2 + 1e-12)),
                &metrics,
            )
            .unwrap();
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 4);
        assert!(c.mean_delay_s <= d.mean_delay_s);
    }

    #[test]
    fn n_state_solver_agrees_with_two_state() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let policy = Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2));
        let two = cache.delay(&params, 9, policy, &metrics).unwrap();
        let n = cache.queue_n(&params, 9, policy, &metrics).unwrap();
        let rel = (n.mean_sojourn_s - two.mean_delay_s).abs() / two.mean_delay_s;
        assert!(rel < 1e-6, "cross-solver disagreement {rel}");
    }

    #[test]
    fn fifo_eviction_fires_at_the_bound_and_is_counted() {
        let cache = SolveCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let metrics = MetricsRegistry::enabled();
        let models: Vec<DcfModel> = [5usize, 9, 29]
            .iter()
            .map(|&n| DcfModel::new(n, 0.02, PhyParams::g_54mbps()))
            .collect();
        let first = cache.dcf(&models[0], &metrics).unwrap();
        cache.dcf(&models[1], &metrics).unwrap();
        // Third insert evicts the oldest (models[0]).
        cache.dcf(&models[2], &metrics).unwrap();
        assert_eq!(cache.len(), 2);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::EVICTIONS), 1);
        assert_eq!(snap.counter(SolveCache::MISSES), 3);
        // models[1] survived (hit); models[0] was evicted (miss) — and the
        // recompute returns the identical bits, so values never change.
        cache.dcf(&models[1], &metrics).unwrap();
        let again = cache.dcf(&models[0], &metrics).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::HITS), 1);
        assert_eq!(snap.counter(SolveCache::MISSES), 4);
        assert_eq!(
            again.packet_success_rate.to_bits(),
            first.packet_success_rate.to_bits()
        );
    }

    #[test]
    fn default_capacity_never_evicts_in_a_figure_sized_sweep() {
        let cache = SolveCache::new();
        assert_eq!(cache.capacity(), SolveCache::DEFAULT_CAPACITY);
        let metrics = MetricsRegistry::enabled();
        for n in 1..=64usize {
            let model = DcfModel::new(n, 0.02, PhyParams::g_54mbps());
            cache.dcf(&model, &metrics).unwrap();
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(metrics.snapshot().counter(SolveCache::EVICTIONS), 0);
    }

    #[test]
    #[should_panic(expected = "room for one entry")]
    fn zero_capacity_is_rejected() {
        let _ = SolveCache::with_capacity(0);
    }

    #[test]
    fn capacity_one_thrashes_but_never_changes_values() {
        // The smallest legal cache: every alternating lookup evicts the
        // other key, so nothing ever hits — but each recompute returns the
        // identical bits (capacity bounds *when* work happens, not *what*
        // callers get back).
        let cache = SolveCache::with_capacity(1);
        assert_eq!(cache.capacity(), 1);
        let metrics = MetricsRegistry::enabled();
        let a = DcfModel::new(5, 0.02, PhyParams::g_54mbps());
        let b = DcfModel::new(9, 0.02, PhyParams::g_54mbps());
        let first_a = cache.dcf(&a, &metrics).unwrap();
        let first_b = cache.dcf(&b, &metrics).unwrap(); // evicts a
        let again_a = cache.dcf(&a, &metrics).unwrap(); // miss, evicts b
        let again_b = cache.dcf(&b, &metrics).unwrap(); // miss, evicts a
        assert_eq!(cache.len(), 1);
        assert_eq!(
            first_a.packet_success_rate.to_bits(),
            again_a.packet_success_rate.to_bits()
        );
        assert_eq!(
            first_b.packet_success_rate.to_bits(),
            again_b.packet_success_rate.to_bits()
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::MISSES), 4);
        assert_eq!(snap.counter(SolveCache::HITS), 0);
        assert_eq!(snap.counter(SolveCache::EVICTIONS), 3);
        // Back-to-back same-key lookups still hit even at capacity one.
        cache.dcf(&b, &metrics).unwrap();
        assert_eq!(metrics.snapshot().counter(SolveCache::HITS), 1);
    }

    #[test]
    fn concurrent_lookups_miss_exactly_once() {
        use std::sync::Arc;
        let cache = Arc::new(SolveCache::new());
        let metrics = Arc::new(MetricsRegistry::enabled());
        let model = DcfModel::new(29, 0.02, PhyParams::g_54mbps());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                scope.spawn(move || {
                    for _ in 0..16 {
                        cache.dcf(&model, &metrics).unwrap();
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::MISSES), 1);
        assert_eq!(snap.counter(SolveCache::HITS), 8 * 16 - 1);
    }
}
