//! Memoized analytic solves for the multi-flow hot loop.
//!
//! An N-flow cell asks for the same channel operating point and the same
//! queue solution once per flow; re-running the DCF fixed point and the
//! MMPP/G/1 series expansion N times would dominate the sweep. The
//! [`SolveCache`] memoizes three solve families, keyed by
//! (policy × station count × PHY × scenario fingerprint):
//!
//! * [`DcfModel::try_solve`] → [`DcfSolution`] — the contention coupling of
//!   eqs. 4–9;
//! * [`DelayModel::predict`] → [`DelayPrediction`] — the 2-MMPP/G/1 delay
//!   of eq. 19;
//! * [`MmppNG1::solve`] → [`QueueSolutionN`] — the n-state solver on the
//!   same scenario, used as a cross-solver consistency gate.
//!
//! Every lookup increments either [`SolveCache::HITS`] or
//! [`SolveCache::MISSES`] in the caller's `MetricsRegistry`. Computation
//! happens **under the map lock**, so concurrent first lookups of a key
//! serialise: exactly one miss per distinct key, no matter how many shard
//! threads race — which keeps the counters (and therefore the metered
//! snapshot) bit-reproducible.
//!
//! [`DcfModel::try_solve`]: thrifty_net::dcf::DcfModel::try_solve
//! [`DelayModel::predict`]: thrifty_analytic::delay::DelayModel::predict
//! [`MmppNG1::solve`]: thrifty_queueing::solver_n::MmppNG1::solve

use std::collections::BTreeMap;
use std::sync::Mutex;

use thrifty_analytic::delay::{DelayModel, DelayPrediction};
use thrifty_analytic::params::ScenarioParams;
use thrifty_analytic::policy::{EncryptionMode, Policy};
use thrifty_net::dcf::{DcfError, DcfModel, DcfSolution};
use thrifty_queueing::matrix::Matrix;
use thrifty_queueing::solver::SolveError;
use thrifty_queueing::solver_n::{MmppN, MmppNG1, QueueSolutionN};
use thrifty_telemetry::{MetricsRegistry, Snapshot};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable textual key for an encryption mode: variant tag plus the exact
/// bit pattern of any fraction (labels round, bits do not).
fn mode_key(mode: EncryptionMode) -> String {
    match mode {
        EncryptionMode::None => "none".into(),
        EncryptionMode::All => "all".into(),
        EncryptionMode::IFrames => "i".into(),
        EncryptionMode::PFrames => "p".into(),
        EncryptionMode::IPlusFractionP(a) => format!("i+p:{:016x}", a.to_bits()),
        EncryptionMode::FractionI(b) => format!("fi:{:016x}", b.to_bits()),
    }
}

/// Fingerprint of everything a DCF solve depends on: station count, the PER
/// bit pattern and every PHY field (via the exact `Debug` rendering, which
/// round-trips f64s).
fn dcf_key(model: &DcfModel) -> String {
    format!(
        "dcf/{}/{:016x}/{:016x}",
        model.stations,
        model.channel_per.to_bits(),
        fnv1a(format!("{:?}", model.phy).as_bytes())
    )
}

/// Fingerprint of a full scenario (MMPP, packet stats, device, jitter, DCF
/// operating point, PHY — everything a queue solve reads). `Debug` of f64
/// uses shortest-round-trip formatting, so equal fingerprints mean equal
/// bit patterns.
fn scenario_fingerprint(params: &ScenarioParams) -> u64 {
    fnv1a(format!("{params:?}").as_bytes())
}

fn queue_key(kind: &str, params: &ScenarioParams, stations: usize, policy: Policy) -> String {
    format!(
        "{kind}/{}/{}/{}/{:016x}",
        policy.algorithm.name(),
        mode_key(policy.mode),
        stations,
        scenario_fingerprint(params)
    )
}

/// A thread-safe memo table for the three solve families the fleet engine
/// consults per flow. One cache is scoped to one cell (one registry), so
/// the hit/miss counters it reports are deterministic.
#[derive(Default)]
pub struct SolveCache {
    dcf: Mutex<BTreeMap<String, DcfSolution>>,
    delay: Mutex<BTreeMap<String, DelayPrediction>>,
    queue_n: Mutex<BTreeMap<String, QueueSolutionN>>,
}

impl SolveCache {
    /// Telemetry counter incremented on every cache hit.
    pub const HITS: &'static str = "fleet.solve_cache.hits";
    /// Telemetry counter incremented on every cache miss.
    pub const MISSES: &'static str = "fleet.solve_cache.misses";

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn memo<T: Clone, E>(
        map: &Mutex<BTreeMap<String, T>>,
        key: String,
        metrics: &MetricsRegistry,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        // Holding the lock across `compute` serialises concurrent first
        // lookups: one miss per distinct key, deterministically.
        let mut guard = map.lock().expect("solve cache poisoned");
        if let Some(v) = guard.get(&key) {
            metrics.counter(Self::HITS).inc();
            return Ok(v.clone());
        }
        metrics.counter(Self::MISSES).inc();
        let v = compute()?;
        guard.insert(key, v.clone());
        Ok(v)
    }

    /// Memoized [`DcfModel::try_solve`]: the operating point for a station
    /// count / PER / PHY triple. Errors (degenerate models) are not cached.
    pub fn dcf(
        &self,
        model: &DcfModel,
        metrics: &MetricsRegistry,
    ) -> Result<DcfSolution, DcfError> {
        Self::memo(&self.dcf, dcf_key(model), metrics, || model.try_solve())
    }

    /// Memoized [`DelayModel::predict`] for a (scenario, policy) pair —
    /// `stations` keys the contention operating point the scenario was
    /// calibrated for.
    pub fn delay(
        &self,
        params: &ScenarioParams,
        stations: usize,
        policy: Policy,
        metrics: &MetricsRegistry,
    ) -> Result<DelayPrediction, SolveError> {
        Self::memo(
            &self.delay,
            queue_key("delay", params, stations, policy),
            metrics,
            || DelayModel::new(params).predict(policy),
        )
    }

    /// Memoized n-state solve of the same queue: the scenario's 2-MMPP
    /// embedded as a 2-phase [`MmppN`] through the general [`MmppNG1`]
    /// solver. Agrees with [`delay`](Self::delay) to ~1e-9 relative — the
    /// engine uses the pair as a cross-solver consistency gate.
    pub fn queue_n(
        &self,
        params: &ScenarioParams,
        stations: usize,
        policy: Policy,
        metrics: &MetricsRegistry,
    ) -> Result<QueueSolutionN, SolveError> {
        Self::memo(
            &self.queue_n,
            queue_key("queue_n", params, stations, policy),
            metrics,
            || {
                let m = &params.mmpp;
                let generator = Matrix::from_rows(&[&[-m.p1, m.p1], &[m.p2, -m.p2]]);
                let mmpp_n = MmppN::new(generator, vec![m.lambda1, m.lambda2]);
                let service = DelayModel::new(params).service_distribution(policy);
                MmppNG1::new(mmpp_n, service).solve()
            },
        )
    }

    /// Number of distinct solutions currently memoized (all families).
    pub fn len(&self) -> usize {
        self.dcf.lock().expect("solve cache poisoned").len()
            + self.delay.lock().expect("solve cache poisoned").len()
            + self.queue_n.lock().expect("solve cache poisoned").len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate recorded in a snapshot's cache counters; `None` when the
    /// snapshot saw no cache traffic.
    pub fn hit_rate(snapshot: &Snapshot) -> Option<f64> {
        let hits = snapshot.counter(Self::HITS);
        let misses = snapshot.counter(Self::MISSES);
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_analytic::params::SAMSUNG_GALAXY_S2;
    use thrifty_crypto::Algorithm;
    use thrifty_net::dcf::PhyParams;
    use thrifty_video::motion::MotionLevel;

    fn scenario(stations: usize) -> ScenarioParams {
        ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, stations, 0.92)
    }

    #[test]
    fn dcf_hits_after_first_solve() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let model = DcfModel::new(9, 0.02, PhyParams::g_54mbps());
        let a = cache.dcf(&model, &metrics).unwrap();
        let b = cache.dcf(&model, &metrics).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.packet_success_rate.to_bits(), model.solve().packet_success_rate.to_bits());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::MISSES), 1);
        assert_eq!(snap.counter(SolveCache::HITS), 1);
        assert_eq!(SolveCache::hit_rate(&snap), Some(0.5));
    }

    #[test]
    fn distinct_station_counts_are_distinct_keys() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        for n in [5usize, 6, 29, 54, 104] {
            let model = DcfModel::new(n, 0.02, PhyParams::g_54mbps());
            cache.dcf(&model, &metrics).unwrap();
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 5);
        assert_eq!(metrics.snapshot().counter(SolveCache::HITS), 0);
    }

    #[test]
    fn degenerate_dcf_is_an_error_and_not_cached() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let bad = DcfModel {
            stations: 0,
            channel_per: 0.0,
            phy: PhyParams::g_54mbps(),
        };
        assert!(cache.dcf(&bad, &metrics).is_err());
        assert!(cache.dcf(&bad, &metrics).is_err());
        assert!(cache.is_empty());
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 2);
    }

    #[test]
    fn delay_cache_returns_the_solver_value() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let policy = Policy::new(Algorithm::Aes256, EncryptionMode::IFrames);
        let cached = cache.delay(&params, 9, policy, &metrics).unwrap();
        let direct = DelayModel::new(&params).predict(policy).unwrap();
        assert_eq!(cached.mean_delay_s.to_bits(), direct.mean_delay_s.to_bits());
        // Second lookup hits.
        cache.delay(&params, 9, policy, &metrics).unwrap();
        assert_eq!(metrics.snapshot().counter(SolveCache::HITS), 1);
    }

    #[test]
    fn policies_do_not_collide() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let a = cache
            .delay(&params, 9, Policy::new(Algorithm::Aes256, EncryptionMode::All), &metrics)
            .unwrap();
        let b = cache
            .delay(&params, 9, Policy::new(Algorithm::Aes256, EncryptionMode::None), &metrics)
            .unwrap();
        assert!(a.mean_delay_s > b.mean_delay_s, "all {} none {}", a.mean_delay_s, b.mean_delay_s);
        // Nearby fractions key separately by bit pattern.
        let c = cache
            .delay(
                &params,
                9,
                Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2)),
                &metrics,
            )
            .unwrap();
        let d = cache
            .delay(
                &params,
                9,
                Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2 + 1e-12)),
                &metrics,
            )
            .unwrap();
        assert_eq!(metrics.snapshot().counter(SolveCache::MISSES), 4);
        assert!(c.mean_delay_s <= d.mean_delay_s);
    }

    #[test]
    fn n_state_solver_agrees_with_two_state() {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let params = scenario(9);
        let policy = Policy::new(Algorithm::Aes256, EncryptionMode::IPlusFractionP(0.2));
        let two = cache.delay(&params, 9, policy, &metrics).unwrap();
        let n = cache.queue_n(&params, 9, policy, &metrics).unwrap();
        let rel = (n.mean_sojourn_s - two.mean_delay_s).abs() / two.mean_delay_s;
        assert!(rel < 1e-6, "cross-solver disagreement {rel}");
    }

    #[test]
    fn concurrent_lookups_miss_exactly_once() {
        use std::sync::Arc;
        let cache = Arc::new(SolveCache::new());
        let metrics = Arc::new(MetricsRegistry::enabled());
        let model = DcfModel::new(29, 0.02, PhyParams::g_54mbps());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                scope.spawn(move || {
                    for _ in 0..16 {
                        cache.dcf(&model, &metrics).unwrap();
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(SolveCache::MISSES), 1);
        assert_eq!(snap.counter(SolveCache::HITS), 8 * 16 - 1);
    }
}
