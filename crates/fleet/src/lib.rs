//! # thrifty-fleet
//!
//! Multi-flow contention engine: simulate **N concurrent video uploaders**
//! contending for one access point, the scale-out serving shape the ROADMAP
//! asks for. The paper models a *single* uploader as a 2-MMPP/G/1 queue
//! whose service time already folds in 802.11 DCF contention from `n`
//! stations (Section 4.1, eqs. 4–9); this crate runs N such uploaders at
//! once, coupling them through that same channel: the **live station count**
//! (background stations + N flows) feeds [`DcfModel::solve`], and the
//! resulting operating point `(p_s, λ_b)` parameterises every flow's sender
//! pipeline and analytic prediction.
//!
//! Design invariants:
//!
//! * **Deterministic per-flow RNG streams** — each flow's draws derive from
//!   `(master seed, flow id)` alone via the FNV-1a + SplitMix64 discipline
//!   of `thrifty-faults`, so adding flows or changing the shard count never
//!   perturbs another flow's trajectory.
//! * **Memoized solves** — DCF fixed points, 2-MMPP/G/1 delay predictions
//!   and n-state [`MmppNG1`] solutions are cached per
//!   (policy × station count × PHY) in a [`SolveCache`]; the per-flow hot
//!   loop only ever performs cache lookups after the first flow warms each
//!   key, and the hit/miss counters land in telemetry.
//! * **Bit-reproducible metered runs** — every flow owns its own
//!   `MetricsRegistry`; snapshots merge in fixed flow-id order, so an
//!   N-flow metered run is byte-identical across invocations and across
//!   shard counts.
//!
//! With `n_flows = 1` and the default background of 4 stations the engine
//! reproduces the existing single-sender experiment path (5 contending
//! stations, the `ExperimentConfig::paper_cell` default) **bit for bit** —
//! the property `reproduce fleet` self-verifies.
//!
//! [`DcfModel::solve`]: thrifty_net::dcf::DcfModel::solve
//! [`MmppNG1`]: thrifty_queueing::solver_n::MmppNG1

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod parallel;
pub mod rng;
pub mod scale;

pub use cache::SolveCache;
pub use engine::{single_sender_reference, FleetConfig, FleetEngine, FleetResult, FlowOutcome};
pub use parallel::{par_flat_map, par_map};
pub use rng::{flow_rng, flow_substream};
pub use scale::{DelayHistogram, ScaleConfig, ScaleEngine, ScaleResult};
