//! A tiny fork/join helper for the figure generators.
//!
//! Every table in the harness is a cartesian product of independent cells
//! (policy × cipher × scenario), each seeding its own RNG, so the cells can
//! be evaluated on separate OS threads without changing a single output
//! value. [`par_map`] does exactly that: a shared atomic index hands cells
//! to workers (work stealing, so a slow simulation cell does not hold up a
//! batch of cheap analytic ones) and each result lands in the slot of its
//! input, keeping row order identical to the sequential loop.
//!
//! `std::thread::scope` is all it needs — no external thread-pool crate and
//! no `unsafe` (the crate forbids it). On a single-core host the helper
//! degenerates to a plain sequential map, so determinism is preserved
//! everywhere and speedup arrives wherever `available_parallelism` > 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Map `f` over `items` on up to `available_parallelism` threads, returning
/// the results in input order.
///
/// Work is distributed by an atomic next-index counter, so threads that
/// finish early steal the remaining cells. Results are written into
/// per-slot [`OnceLock`]s, which keeps the output order equal to the input
/// order regardless of completion order. If `f` panics on any item the
/// panic propagates out of the scope (after the other workers drain).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        // Single core (or ≤1 item): the threaded path would only add
        // spawn/join overhead around the same sequential execution.
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Each index is claimed exactly once, so `set` cannot fail;
                // the Err arm only exists because OnceLock returns the value.
                let _ = slots[i].set(f(&items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("worker filled every claimed slot"))
        .collect()
}

/// [`par_map`] for cell functions that yield several rows each: the
/// per-item `Vec`s are concatenated in input order.
pub fn par_flat_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> Vec<R> + Sync,
{
    par_map(items, f).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map_with_uneven_work() {
        // Uneven per-item cost shuffles completion order; output order and
        // values must not move.
        let items: Vec<u64> = (0..64).collect();
        let work = |&i: &u64| {
            let spins = if i % 7 == 0 { 20_000 } else { 10 };
            (0..spins).fold(i, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        assert_eq!(
            par_map(&items, work),
            items.iter().map(work).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(&Vec::<u8>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let items = [1usize, 2, 3];
        let out = par_flat_map(&items, |&i| vec![i; i]);
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "cell 13")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..32).collect();
        let _ = par_map(&items, |&i| {
            assert!(i != 13, "cell 13");
            i
        });
    }
}
