//! The million-flow scale path: O(1) per-flow state on the event calendar.
//!
//! The full-fidelity [`FleetEngine`](crate::engine::FleetEngine) keeps
//! per-packet records, a capture, a telemetry registry and a PSNR scoring
//! pass per flow — the right cost at the paper's fleet sizes (N ≤ 100),
//! and far too much state at N = 10^5–10^6. [`ScaleEngine`] is the lean
//! sibling: the same per-packet pipeline semantics (MMPP-paced arrivals
//! over the real packetized stream, policy-selected encryption, DCF
//! backoff, airtime, Lindley queue, Bernoulli delivery) with nothing
//! retained per packet and only a few scalars retained per flow.
//!
//! Two deliberate differences from the full engine, both documented here
//! because they make the scale path **deterministic but not bit-identical**
//! to the classic path:
//!
//! * **Split RNG substreams.** The classic sender draws the whole arrival
//!   batch first, then the service draws — impossible in O(1) memory. Each
//!   scale flow instead owns two independent streams
//!   ([`flow_substream`]`(seed, flow, "scale.arrivals" | "scale.service")`),
//!   so arrivals are generated lazily, one draw per event, without
//!   perturbing the service draws.
//! * **Independent cells.** A million uploaders cannot share one AP; the
//!   Bianchi fixed point at 10^6 contenders drives the per-packet success
//!   probability to zero and the geometric backoff loop to astronomical
//!   lengths. The scale fleet therefore models N flows spread across
//!   independent WLAN cells, each cell at the paper's contention level
//!   ([`ScaleConfig::flows_per_cell`] uploaders + background stations), and
//!   all cells share the one cached DCF operating point.
//!
//! Aggregation is built to be shard-invariant without per-flow registries:
//! per-packet delays land in a shared [`DelayHistogram`] (u64 log₂ buckets;
//! integer adds commute, so the merged histogram is independent of shard
//! layout and dispatch interleaving), and the few per-flow `f64` sums are
//! folded after the drain in global flow-id order. `run` is therefore
//! bit-reproducible across runs *and* shard counts — the property
//! `reproduce fleet` gates on before recording throughput numbers into
//! `BENCH_fleet.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thrifty_analytic::params::{DeviceSpec, ScenarioParams, SAMSUNG_GALAXY_S2};
use thrifty_analytic::policy::Policy;
use thrifty_des::{EventKey, Executor, FlowMachine, Schedule, SimTime};
use thrifty_net::dcf::{DcfModel, PhyParams};
use thrifty_sim::sender::{exponential, gaussian};
use thrifty_telemetry::MetricsRegistry;
use thrifty_video::encoder::{EncodedStream, StatisticalEncoder};
use thrifty_video::motion::MotionLevel;
use thrifty_video::packet::{Packetizer, VideoPacket};
use thrifty_video::FrameType;

use crate::cache::SolveCache;
use crate::parallel::par_map;
use crate::rng::flow_substream;

/// Configuration of one scale sweep cell: N lean flows across independent
/// WLAN cells.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Number of flows in the fleet.
    pub n_flows: usize,
    /// The selection policy every flow runs.
    pub policy: Policy,
    /// Content motion class.
    pub motion: MotionLevel,
    /// GOP size.
    pub gop_size: usize,
    /// Device running each sender.
    pub device: DeviceSpec,
    /// Non-uploader stations per WLAN cell.
    pub background_stations: usize,
    /// Uploader flows per WLAN cell; with the background stations this
    /// fixes the DCF operating point every cell runs at (the fleet spans
    /// `n_flows / flows_per_cell` cells, all statistically identical).
    pub flows_per_cell: usize,
    /// Utilisation target for producer pacing.
    pub target_rho: f64,
    /// Frames per clip (shorter than the full engine's default — the scale
    /// story is flow count, not clip length).
    pub frames: usize,
    /// Master RNG seed; flow `f` draws from
    /// `flow_substream(seed, f, "scale.arrivals" / "scale.service")`.
    pub seed: u64,
    /// Shard count for the thread fan-out; `0` picks a default. Results
    /// are invariant to this value.
    pub shards: usize,
}

impl ScaleConfig {
    /// Paper-cell defaults at scale: each cell is the single-sender paper
    /// setting (1 uploader + 4 background = 5 stations), one GOP per clip.
    pub fn paper_scale(n_flows: usize, policy: Policy) -> Self {
        ScaleConfig {
            n_flows,
            policy,
            motion: MotionLevel::High,
            gop_size: 30,
            device: SAMSUNG_GALAXY_S2,
            background_stations: 4,
            flows_per_cell: 1,
            target_rho: 0.92,
            frames: 30,
            seed: 7,
            shards: 0,
        }
    }

    /// Station count of one WLAN cell — what the DCF fixed point is solved
    /// for (NOT `n_flows`; see the module docs).
    pub fn cell_stations(&self) -> usize {
        self.background_stations + self.flows_per_cell
    }

    fn effective_shards(&self) -> usize {
        let requested = if self.shards == 0 { 8 } else { self.shards };
        requested.min(self.n_flows).max(1)
    }
}

/// Fixed-shape log₂ histogram of per-packet delays, in nanoseconds.
///
/// Bucket 0 holds sub-nanosecond delays; bucket `b ≥ 1` holds delays in
/// `[2^(b-1), 2^b)` ns. Recording is one integer increment, merging is an
/// elementwise add — both commutative and associative, so the merged
/// histogram is identical for every shard layout and dispatch order. The
/// price is quantization: percentiles read from the histogram are bucket
/// lower bounds (≤ 2× relative error), which the scale table reports as
/// such.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayHistogram {
    buckets: [u64; 65],
}

impl Default for DelayHistogram {
    fn default() -> Self {
        DelayHistogram { buckets: [0; 65] }
    }
}

impl DelayHistogram {
    /// Record one delay (seconds).
    pub fn record(&mut self, delay_s: f64) {
        // f64→u64 casts saturate, so any finite delay lands in a bucket.
        let ns = (delay_s * 1e9) as u64;
        let b = if ns == 0 { 0 } else { ns.ilog2() as usize + 1 };
        self.buckets[b] += 1;
    }

    /// Elementwise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &DelayHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total recorded delays.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts (index 0 = sub-ns, index b = `[2^(b-1), 2^b)` ns).
    pub fn counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Nearest-rank percentile, quantized to the bucket lower bound,
    /// seconds. `NaN` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if b == 0 {
                    0.0
                } else {
                    2f64.powi(b as i32 - 1) / 1e9
                };
            }
        }
        unreachable!("rank is clamped to the total count")
    }
}

/// The calibrated constants every scale flow shares (one copy per engine,
/// borrowed by every machine).
#[derive(Debug, Clone, Copy)]
struct ScaleConsts {
    policy: Policy,
    delivery: f64,
    cost: thrifty_crypto::CostModel,
    jitter: f64,
    p_s: f64,
    backoff_rate: f64,
    phy: PhyParams,
    lambda1: f64,
    lambda2: f64,
    gop_period: f64,
    gop_size: usize,
}

/// One lean flow: two RNG substreams, the arrival cursor and the Lindley
/// accumulator — every field O(1) in clip length and fleet size.
struct ScaleFlow<'a> {
    consts: &'a ScaleConsts,
    packets: &'a [VideoPacket],
    arrival_rng: StdRng,
    service_rng: StdRng,
    /// Arrival-process cursor (lazy replay of the classic batch generator).
    t: f64,
    last_gop: usize,
    queue_clear_at: f64,
    packets_done: u64,
    delivered: u64,
    delivered_bits: f64,
    sum_delay: f64,
    sum_enc: f64,
}

impl ScaleFlow<'_> {
    /// The classic arrival generator, one step at a time: GOP slot floor,
    /// then an exponential gap at the frame class's MMPP rate.
    fn arrival_for(&mut self, i: usize) -> f64 {
        let pkt = &self.packets[i];
        let c = self.consts;
        let gop = pkt.frame_index / c.gop_size;
        if gop != self.last_gop {
            self.t = self.t.max(gop as f64 * c.gop_period);
            self.last_gop = gop;
        }
        let rate = match pkt.ftype {
            FrameType::I => c.lambda1,
            FrameType::P => c.lambda2,
        };
        self.t += exponential(&mut self.arrival_rng, rate);
        self.t
    }
}

impl FlowMachine for ScaleFlow<'_> {
    type Event = ();
    type Ctx = DelayHistogram;

    fn start(&mut self, sched: &mut Schedule<'_, ()>, _hist: &mut DelayHistogram) {
        if !self.packets.is_empty() {
            let t = self.arrival_for(0);
            sched.at(SimTime::from_s(t), 0, ());
        }
    }

    fn on_event(
        &mut self,
        key: EventKey,
        _event: (),
        sched: &mut Schedule<'_, ()>,
        hist: &mut DelayHistogram,
    ) {
        let i = key.seq as usize;
        let pkt = &self.packets[i];
        let arrival = key.time.as_s();
        let c = self.consts;

        // The per-packet pipeline of `PipelineCore::step`, sans telemetry
        // and record-keeping, drawing from the flow's service substream.
        let unit: f64 = self.service_rng.gen_range(0.0..1.0);
        let encrypted = c.policy.mode.should_encrypt(pkt.ftype, unit);
        let enc_time = if encrypted {
            gaussian(
                &mut self.service_rng,
                c.cost.mean_time(pkt.bytes),
                c.jitter * c.cost.mean_time(pkt.bytes),
            )
        } else {
            0.0
        };
        let mut backoff = 0.0;
        while !self.service_rng.gen_bool(c.p_s) {
            backoff += exponential(&mut self.service_rng, c.backoff_rate);
        }
        let tx_mean = c.phy.tx_time_s(pkt.bytes + 40);
        let tx = gaussian(&mut self.service_rng, tx_mean, c.jitter * tx_mean);
        let service = enc_time + backoff + tx;

        let start = self.queue_clear_at.max(arrival);
        let wait = start - arrival;
        self.queue_clear_at = start + service;
        let delivered = self.service_rng.gen_bool(c.delivery);

        self.packets_done += 1;
        self.sum_delay += wait + service;
        self.sum_enc += enc_time;
        if delivered {
            self.delivered += 1;
            self.delivered_bits += pkt.bytes as f64 * 8.0;
        }
        hist.record(wait + service);

        if i + 1 < self.packets.len() {
            let t = self.arrival_for(i + 1);
            sched.at(SimTime::from_s(t), key.seq + 1, ());
        }
    }
}

/// Aggregate outcome of one scale cell.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Flow count of the run.
    pub flows: usize,
    /// Station count per WLAN cell the DCF point was solved for.
    pub cell_stations: usize,
    /// Total packets stepped through the pipeline.
    pub packets: u64,
    /// Calendar events dispatched (one per packet — asserted in tests).
    pub events: u64,
    /// Packets the channel delivered.
    pub delivered: u64,
    /// Mean per-packet delay over all packets of all flows, seconds
    /// (exact: folded from per-flow sums in flow-id order).
    pub mean_delay_s: f64,
    /// Median delay, histogram-quantized (bucket lower bound), seconds.
    pub p50_delay_s: f64,
    /// 95th percentile, histogram-quantized, seconds.
    pub p95_delay_s: f64,
    /// 99th percentile, histogram-quantized, seconds.
    pub p99_delay_s: f64,
    /// Fleet makespan (all flows start at t = 0), seconds.
    pub makespan_s: f64,
    /// Aggregate delivered goodput over the makespan, bits/s.
    pub aggregate_throughput_bps: f64,
    /// The merged delay histogram.
    pub histogram: DelayHistogram,
}

impl ScaleResult {
    /// Bit-level equality — the double-run / shard-invariance relation.
    pub fn bit_identical(&self, other: &ScaleResult) -> bool {
        self.flows == other.flows
            && self.cell_stations == other.cell_stations
            && self.packets == other.packets
            && self.events == other.events
            && self.delivered == other.delivered
            && self.mean_delay_s.to_bits() == other.mean_delay_s.to_bits()
            && self.p50_delay_s.to_bits() == other.p50_delay_s.to_bits()
            && self.p95_delay_s.to_bits() == other.p95_delay_s.to_bits()
            && self.p99_delay_s.to_bits() == other.p99_delay_s.to_bits()
            && self.makespan_s.to_bits() == other.makespan_s.to_bits()
            && self.aggregate_throughput_bps.to_bits() == other.aggregate_throughput_bps.to_bits()
            && self.histogram == other.histogram
    }
}

/// A prepared scale cell: one cached DCF solve, one calibrated scenario,
/// one coded stream and one packetization shared (immutably) by every flow.
pub struct ScaleEngine {
    config: ScaleConfig,
    consts: ScaleConsts,
    packets: Vec<VideoPacket>,
}

impl ScaleEngine {
    /// Prepare the cell. The DCF solve goes through `cache` (so sweeps
    /// reuse it across N) and its hit/miss counters land in `metrics`.
    pub fn prepare(config: ScaleConfig, cache: &SolveCache, metrics: &MetricsRegistry) -> Self {
        assert!(config.n_flows >= 1, "a fleet needs at least one flow");
        let dcf_model = DcfModel::new(
            config.cell_stations(),
            thrifty_analytic::params::DEFAULT_CHANNEL_PER,
            PhyParams::g_54mbps(),
        );
        let dcf = cache
            .dcf(&dcf_model, metrics)
            .expect("cell station counts are >= 1 with a valid PER");
        let params = ScenarioParams::calibrated_with_dcf(
            config.motion,
            config.gop_size,
            config.device,
            dcf,
            config.target_rho,
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let stream =
            StatisticalEncoder::new(config.motion, config.gop_size).encode(config.frames, &mut rng);
        let packets = Packetizer::default().packetize(&stream);
        let consts = Self::consts_of(&config, &params, &stream, packets.len());
        ScaleEngine {
            config,
            consts,
            packets,
        }
    }

    /// The same derived constants the classic `PipelineCore` / arrival
    /// generator compute, hoisted out of the per-flow hot path.
    fn consts_of(
        config: &ScaleConfig,
        params: &ScenarioParams,
        stream: &EncodedStream,
        n_packets: usize,
    ) -> ScaleConsts {
        let natural_rate = n_packets as f64 / stream.duration_s();
        let speedup = params.mmpp.mean_rate() / natural_rate;
        ScaleConsts {
            policy: config.policy,
            delivery: params.delivery_rate(),
            cost: params.cost_model(config.policy.algorithm),
            jitter: params.jitter_rel,
            p_s: params.dcf.packet_success_rate,
            backoff_rate: params.dcf.backoff_rate_hz,
            phy: params.phy,
            lambda1: params.mmpp.lambda1,
            lambda2: params.mmpp.lambda2,
            gop_period: stream.gop_size as f64 / stream.fps / speedup,
            gop_size: stream.gop_size,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// Packets each flow pushes (the shared packetization's length).
    pub fn packets_per_flow(&self) -> usize {
        self.packets.len()
    }

    /// Run the fleet: contiguous shards across threads, one calendar per
    /// shard, per-flow `f64` sums folded in global flow-id order and
    /// histograms merged with integer adds — bit-identical across runs and
    /// shard counts.
    pub fn run(&self) -> ScaleResult {
        let cfg = &self.config;
        let n = cfg.n_flows;
        let shard_count = cfg.effective_shards();
        let per_shard = n.div_ceil(shard_count);
        let shards: Vec<std::ops::Range<usize>> = (0..shard_count)
            .map(|s| (s * per_shard).min(n)..((s + 1) * per_shard).min(n))
            .filter(|r| !r.is_empty())
            .collect();

        struct ShardOut {
            sums: Vec<(u64, u64, f64, f64, f64, f64)>,
            hist: DelayHistogram,
            events: u64,
        }
        let shard_outs: Vec<ShardOut> = par_map(&shards, |range| {
            let machines: Vec<ScaleFlow<'_>> = range
                .clone()
                .map(|flow| ScaleFlow {
                    consts: &self.consts,
                    packets: &self.packets,
                    arrival_rng: flow_substream(cfg.seed, flow as u64, "scale.arrivals"),
                    service_rng: flow_substream(cfg.seed, flow as u64, "scale.service"),
                    t: 0.0,
                    last_gop: usize::MAX,
                    queue_clear_at: 0.0,
                    packets_done: 0,
                    delivered: 0,
                    delivered_bits: 0.0,
                    sum_delay: 0.0,
                    sum_enc: 0.0,
                })
                .collect();
            let mut exec = Executor::new(machines, range.start as u64);
            let mut hist = DelayHistogram::default();
            let events = exec.run(&mut hist);
            ShardOut {
                sums: exec
                    .into_machines()
                    .into_iter()
                    .map(|m| {
                        (
                            m.packets_done,
                            m.delivered,
                            m.delivered_bits,
                            m.sum_delay,
                            m.sum_enc,
                            m.queue_clear_at,
                        )
                    })
                    .collect(),
                hist,
                events,
            }
        });

        // Fold in global flow-id order (shards are contiguous ascending
        // ranges), so the f64 sums are independent of the shard layout.
        let mut packets = 0u64;
        let mut events = 0u64;
        let mut delivered = 0u64;
        let mut delivered_bits = 0.0f64;
        let mut sum_delay = 0.0f64;
        let mut makespan = 0.0f64;
        let mut hist = DelayHistogram::default();
        for out in &shard_outs {
            events += out.events;
            hist.merge(&out.hist);
            for &(p, d, bits, delay, _enc, duration) in &out.sums {
                packets += p;
                delivered += d;
                delivered_bits += bits;
                sum_delay += delay;
                makespan = makespan.max(duration);
            }
        }
        ScaleResult {
            flows: n,
            cell_stations: cfg.cell_stations(),
            packets,
            events,
            delivered,
            mean_delay_s: sum_delay / packets.max(1) as f64,
            p50_delay_s: hist.percentile(0.50),
            p95_delay_s: hist.percentile(0.95),
            p99_delay_s: hist.percentile(0.99),
            makespan_s: makespan,
            aggregate_throughput_bps: delivered_bits / makespan.max(f64::MIN_POSITIVE),
            histogram: hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_analytic::policy::EncryptionMode;
    use thrifty_crypto::Algorithm;

    fn cfg(n: usize) -> ScaleConfig {
        ScaleConfig::paper_scale(n, Policy::new(Algorithm::Aes256, EncryptionMode::IFrames))
    }

    fn run(cfg: ScaleConfig) -> ScaleResult {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        ScaleEngine::prepare(cfg, &cache, &metrics).run()
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = DelayHistogram::default();
        assert!(h.percentile(0.5).is_nan());
        h.record(0.0); // bucket 0
        h.record(3e-9); // [2,4) ns -> bucket 2
        h.record(3e-9);
        h.record(1.0); // 1e9 ns -> bucket ilog2(1e9)+1 = 30
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[2], 2);
        assert_eq!(h.counts()[30], 1);
        assert_eq!(h.percentile(0.25), 0.0);
        assert_eq!(h.percentile(0.5), 2e-9); // lower bound of bucket 2
        assert!((h.percentile(1.0) - 2f64.powi(29) / 1e9).abs() < 1e-12);
        let mut h2 = DelayHistogram::default();
        h2.record(1.0);
        h2.merge(&h);
        assert_eq!(h2.total(), 5);
        assert_eq!(h2.counts()[30], 2);
    }

    #[test]
    fn merging_empty_shards_is_the_identity() {
        // An idle shard (zero packets) must not perturb the merged
        // histogram in either merge direction.
        let mut loaded = DelayHistogram::default();
        loaded.record(3e-9);
        loaded.record(1.0);
        let before = loaded.clone();
        loaded.merge(&DelayHistogram::default());
        assert_eq!(loaded, before, "merging an empty shard changed counts");
        let mut empty = DelayHistogram::default();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into an empty shard is not a copy");
        // Empty ⊕ empty stays empty, percentiles stay NaN.
        let mut both = DelayHistogram::default();
        both.merge(&DelayHistogram::default());
        assert_eq!(both.total(), 0);
        assert!(both.percentile(0.5).is_nan());
    }

    #[test]
    fn single_bucket_shards_merge_to_exact_percentiles() {
        // Degenerate shards whose mass sits in one bucket each: the merge
        // is an elementwise add, so counts and every percentile are exact.
        let mut a = DelayHistogram::default();
        for _ in 0..3 {
            a.record(3e-9); // bucket 2: [2, 4) ns
        }
        let mut b = DelayHistogram::default();
        b.record(1.0); // bucket 30
        let mut merged = DelayHistogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.total(), 4);
        assert_eq!(merged.counts()[2], 3);
        assert_eq!(merged.counts()[30], 1);
        // 3 of 4 samples in bucket 2: p75 reads its lower bound, p100 the
        // lone tail bucket — merge order must not matter.
        assert_eq!(merged.percentile(0.75), 2e-9);
        assert!((merged.percentile(1.0) - 2f64.powi(29) / 1e9).abs() < 1e-12);
        let mut swapped = DelayHistogram::default();
        swapped.merge(&b);
        swapped.merge(&a);
        assert_eq!(swapped, merged, "histogram merge must commute");
    }

    #[test]
    fn double_run_is_bit_identical_at_ten_thousand_flows() {
        let c = cfg(10_000);
        let a = run(c);
        let b = run(c);
        assert!(a.bit_identical(&b), "double run diverged at N=10^4");
        assert_eq!(a.events, a.packets, "one event per packet");
        assert_eq!(a.flows, 10_000);
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut a_cfg = cfg(97); // awkward size: uneven shard split
        a_cfg.shards = 1;
        let mut b_cfg = cfg(97);
        b_cfg.shards = 5;
        let a = run(a_cfg);
        let b = run(b_cfg);
        assert!(a.bit_identical(&b), "shard layout changed the scale result");
    }

    #[test]
    fn seeds_matter_and_flows_scale_packets() {
        let a = run(cfg(20));
        let mut c = cfg(20);
        c.seed = 8;
        let b = run(c);
        assert!(!a.bit_identical(&b), "seed must matter");
        let big = run(cfg(40));
        assert_eq!(big.packets, 2 * a.packets, "per-flow packet count is fixed");
        assert!(big.delivered <= big.packets);
        assert_eq!(big.histogram.total(), big.packets);
    }

    #[test]
    fn delays_are_physical_and_percentiles_ordered() {
        let r = run(cfg(50));
        assert!(r.mean_delay_s > 0.0 && r.mean_delay_s.is_finite());
        assert!(r.p50_delay_s <= r.p95_delay_s);
        assert!(r.p95_delay_s <= r.p99_delay_s);
        // Histogram quantization stays within 2x of the exact mean's
        // magnitude for the median: the median bucket's lower bound cannot
        // exceed the true p50, and the mean sits between p50 and p99 here.
        assert!(r.p50_delay_s <= r.mean_delay_s * 2.0);
        assert!(r.makespan_s > 0.0 && r.aggregate_throughput_bps > 0.0);
    }

    #[test]
    fn scale_mean_tracks_the_classic_engine() {
        // Different RNG discipline, same physics: at equal config the scale
        // path's mean delay must land in the classic engine's neighbourhood
        // (they agree in distribution, not in bits).
        let sc = cfg(30);
        let scale = run(sc);
        let mut fc = crate::engine::FleetConfig::paper_fleet(30, sc.policy);
        fc.frames = sc.frames;
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        // Classic engine couples contention to the live station count;
        // compare against a cell of the same size as the scale cell.
        fc.n_flows = sc.flows_per_cell;
        fc.background_stations = sc.background_stations;
        let classic = crate::engine::FleetEngine::prepare(fc, &cache, &metrics)
            .run(&cache, &metrics);
        let rel = (scale.mean_delay_s - classic.mean_delay_s).abs() / classic.mean_delay_s;
        assert!(
            rel < 0.5,
            "scale mean {} vs classic mean {} (rel {rel})",
            scale.mean_delay_s,
            classic.mean_delay_s
        );
    }
}
