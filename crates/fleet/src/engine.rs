//! The sharded N-flow engine.
//!
//! One [`FleetEngine`] run simulates `n_flows` uploaders pushing the same
//! reference clip through one AP, all starting at t = 0 on the shared sim
//! clock. Contention is coupled the way the paper couples it (Section 4.1,
//! eqs. 4–9): the **live station count** — `background_stations + n_flows`
//! — feeds the Bianchi DCF fixed point, and the resulting `(p_s, λ_b)`
//! parameterises every flow's per-packet backoff as well as the analytic
//! prediction. Flows are partitioned into contiguous shards fanned across
//! threads with [`par_map`]; each shard drains its flows as state machines
//! on one `thrifty-des` calendar keyed by global flow id, each flow draws
//! from its own [`flow_rng`] stream and owns its own `MetricsRegistry`,
//! and the final merge walks flows in fixed flow-id order — so the result
//! is bit-identical across invocations *and* across shard counts, and
//! bit-identical to the retained sequential loop
//! ([`FleetEngine::run_reference`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrifty_analytic::delay::DelayPrediction;
use thrifty_analytic::params::{
    DeviceSpec, ScenarioParams, DEFAULT_CHANNEL_PER, SAMSUNG_GALAXY_S2,
};
use thrifty_analytic::policy::Policy;
use thrifty_des::Executor;
use thrifty_net::dcf::{DcfModel, PhyParams};
use thrifty_sim::sender::{SenderSim, SenderSummary};
use thrifty_telemetry::{MetricsRegistry, Snapshot};
use thrifty_video::encoder::{EncodedStream, StatisticalEncoder};
use thrifty_video::packet::Packetizer;
use thrifty_video::motion::MotionLevel;
use thrifty_video::quality::{measure_quality, RefreshingDecoder};
use thrifty_video::scene::{SceneConfig, SceneGenerator};
use thrifty_video::yuv::{Resolution, YuvFrame};

use crate::cache::SolveCache;
use crate::parallel::par_map;
use crate::rng::flow_rng;

/// Configuration of one fleet cell: N flows under one policy on one AP.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of concurrent uploader flows.
    pub n_flows: usize,
    /// The selection policy every flow runs.
    pub policy: Policy,
    /// Content motion class of the uploaded clips.
    pub motion: MotionLevel,
    /// GOP size.
    pub gop_size: usize,
    /// Device running each sender.
    pub device: DeviceSpec,
    /// Non-uploader stations contending on the WLAN (AP neighbourhood).
    pub background_stations: usize,
    /// Utilisation target for the heaviest policy (producer pacing).
    pub target_rho: f64,
    /// Frames per clip.
    pub frames: usize,
    /// Clip resolution.
    pub resolution: Resolution,
    /// Master RNG seed; flow `f` draws from `flow_rng(seed, f)`.
    pub seed: u64,
    /// Shard count for the thread fan-out; `0` picks a default. Results
    /// are invariant to this value.
    pub shards: usize,
}

impl FleetConfig {
    /// Paper-style defaults: fast-motion GOP-30 clips on the Samsung, 4
    /// background stations — so `n_flows = 1` contends with 5 stations,
    /// exactly the `ExperimentConfig::paper_cell` single-sender setting.
    pub fn paper_fleet(n_flows: usize, policy: Policy) -> Self {
        FleetConfig {
            n_flows,
            policy,
            motion: MotionLevel::High,
            gop_size: 30,
            device: SAMSUNG_GALAXY_S2,
            background_stations: 4,
            target_rho: 0.92,
            frames: 120,
            resolution: Resolution::QCIF,
            seed: 7,
            shards: 0,
        }
    }

    /// The live station count the DCF model sees: every uploader flow plus
    /// the background stations.
    pub fn stations(&self) -> usize {
        self.background_stations + self.n_flows
    }

    fn effective_shards(&self) -> usize {
        let requested = if self.shards == 0 { 8 } else { self.shards };
        requested.min(self.n_flows).max(1)
    }
}

/// What happened to one flow of the fleet.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Flow id (0-based, stable across shard counts).
    pub flow: usize,
    /// Packets the flow transmitted.
    pub packets: usize,
    /// Packets the channel delivered.
    pub delivered: usize,
    /// Mean per-packet delay, seconds.
    pub mean_delay_s: f64,
    /// Median per-packet delay, seconds.
    pub p50_delay_s: f64,
    /// 95th-percentile per-packet delay, seconds.
    pub p95_delay_s: f64,
    /// 99th-percentile per-packet delay, seconds.
    pub p99_delay_s: f64,
    /// Delivered goodput of the flow, bits/s over its transfer duration.
    pub throughput_bps: f64,
    /// Eavesdropper PSNR of the flow's clip, dB.
    pub psnr_eve_db: f64,
    /// Transfer duration on the sim clock, seconds.
    pub duration_s: f64,
    /// The flow's own telemetry snapshot (spans, counters, histograms).
    pub snapshot: Snapshot,
}

impl FlowOutcome {
    /// Bit-level equality: every float compared by bit pattern and the
    /// telemetry snapshot compared by its canonical JSON — the relation the
    /// N = 1 / single-sender and double-run guarantees are stated in.
    pub fn bit_identical(&self, other: &FlowOutcome) -> bool {
        self.flow == other.flow
            && self.packets == other.packets
            && self.delivered == other.delivered
            && self.mean_delay_s.to_bits() == other.mean_delay_s.to_bits()
            && self.p50_delay_s.to_bits() == other.p50_delay_s.to_bits()
            && self.p95_delay_s.to_bits() == other.p95_delay_s.to_bits()
            && self.p99_delay_s.to_bits() == other.p99_delay_s.to_bits()
            && self.throughput_bps.to_bits() == other.throughput_bps.to_bits()
            && self.psnr_eve_db.to_bits() == other.psnr_eve_db.to_bits()
            && self.duration_s.to_bits() == other.duration_s.to_bits()
            && self.snapshot.to_json() == other.snapshot.to_json()
    }
}

/// Aggregated outcome of one fleet cell.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Station count the DCF operating point was solved for.
    pub stations: usize,
    /// Per-flow outcomes in flow-id order.
    pub flows: Vec<FlowOutcome>,
    /// Analytic per-packet delay prediction (2-MMPP/G/1, eq. 19).
    pub analytic: DelayPrediction,
    /// Mean sojourn from the n-state [`MmppNG1`] solve of the same queue —
    /// kept alongside [`analytic`](Self::analytic) as a cross-solver gate.
    ///
    /// [`MmppNG1`]: thrifty_queueing::solver_n::MmppNG1
    pub analytic_n_sojourn_s: f64,
    /// Mean per-packet delay over all packets of all flows, seconds.
    pub mean_delay_s: f64,
    /// Fleet-wide per-packet delay percentiles, seconds.
    pub p50_delay_s: f64,
    /// 95th percentile over all packets, seconds.
    pub p95_delay_s: f64,
    /// 99th percentile over all packets, seconds.
    pub p99_delay_s: f64,
    /// Aggregate delivered goodput: total delivered bits over the fleet
    /// makespan (all flows start at t = 0), bits/s.
    pub aggregate_throughput_bps: f64,
    /// Mean eavesdropper PSNR over flows, dB.
    pub psnr_eve_db: f64,
    /// Per-flow snapshots merged in flow-id order.
    pub merged: Snapshot,
}

impl FleetResult {
    /// Relative disagreement between the 2-state and n-state analytic
    /// solvers — a solver-consistency residual the sweep gates on.
    pub fn cross_solver_rel(&self) -> f64 {
        (self.analytic_n_sojourn_s - self.analytic.mean_delay_s).abs()
            / self.analytic.mean_delay_s.abs().max(f64::MIN_POSITIVE)
    }

    /// Bit-level equality of two results (every flow, every aggregate, the
    /// merged snapshot).
    pub fn bit_identical(&self, other: &FleetResult) -> bool {
        self.stations == other.stations
            && self.flows.len() == other.flows.len()
            && self
                .flows
                .iter()
                .zip(other.flows.iter())
                .all(|(a, b)| a.bit_identical(b))
            && self.mean_delay_s.to_bits() == other.mean_delay_s.to_bits()
            && self.p50_delay_s.to_bits() == other.p50_delay_s.to_bits()
            && self.p95_delay_s.to_bits() == other.p95_delay_s.to_bits()
            && self.p99_delay_s.to_bits() == other.p99_delay_s.to_bits()
            && self.aggregate_throughput_bps.to_bits() == other.aggregate_throughput_bps.to_bits()
            && self.psnr_eve_db.to_bits() == other.psnr_eve_db.to_bits()
            && self.analytic.mean_delay_s.to_bits() == other.analytic.mean_delay_s.to_bits()
            && self.analytic_n_sojourn_s.to_bits() == other.analytic_n_sojourn_s.to_bits()
            && self.merged.to_json() == other.merged.to_json()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct FlowRun {
    outcome: FlowOutcome,
    delays: Vec<f64>,
}

/// A prepared fleet cell: calibrated scenario, coded stream and pixel clip
/// shared (immutably) by every flow.
pub struct FleetEngine {
    config: FleetConfig,
    params: ScenarioParams,
    stream: EncodedStream,
    clip: Vec<YuvFrame>,
}

impl FleetEngine {
    /// Prepare the cell: solve (or recall) the DCF operating point for the
    /// live station count, calibrate the shared scenario with it, encode
    /// the reference stream and render the clip.
    pub fn prepare(config: FleetConfig, cache: &SolveCache, metrics: &MetricsRegistry) -> Self {
        assert!(config.n_flows >= 1, "a fleet needs at least one flow");
        let dcf = cache
            .dcf(&Self::dcf_model(&config), metrics)
            .expect("fleet station counts are >= 1 with a valid PER");
        let params = ScenarioParams::calibrated_with_dcf(
            config.motion,
            config.gop_size,
            config.device,
            dcf,
            config.target_rho,
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let stream =
            StatisticalEncoder::new(config.motion, config.gop_size).encode(config.frames, &mut rng);
        let scene = SceneGenerator::new(SceneConfig {
            resolution: config.resolution,
            motion: config.motion,
            seed: config.seed,
            fps: 30.0,
        });
        let clip = scene.clip(config.frames);
        FleetEngine {
            config,
            params,
            stream,
            clip,
        }
    }

    fn dcf_model(config: &FleetConfig) -> DcfModel {
        DcfModel::new(config.stations(), DEFAULT_CHANNEL_PER, PhyParams::g_54mbps())
    }

    /// The calibrated scenario shared by all flows.
    pub fn params(&self) -> &ScenarioParams {
        &self.params
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Contiguous ascending shard ranges, so flattening shard outputs
    /// yields flow-id order without a sort.
    fn shard_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let n = self.config.n_flows;
        let shard_count = self.config.effective_shards();
        let per_shard = n.div_ceil(shard_count);
        (0..shard_count)
            .map(|s| (s * per_shard).min(n)..((s + 1) * per_shard).min(n))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Run every flow, fanning contiguous shards across threads, and merge
    /// deterministically. `metrics` receives the cell-level counters (cache
    /// hits/misses, flow count); each flow's spans and histograms land in
    /// its own snapshot and merge in flow-id order.
    ///
    /// Since the calendar port each shard is one discrete-event drain: the
    /// shard's flows become [`thrifty_sim::sender::SenderFlowMachine`]s on
    /// one `thrifty-des` calendar (keyed by **global** flow id), and events
    /// interleave across the shard's flows in global sim-time order. Each
    /// machine draws only from its own [`flow_rng`] stream and writes only
    /// its own registry, so the result is bit-identical to the retained
    /// per-flow loop ([`run_reference`](Self::run_reference)) — a relation
    /// the engine tests assert for N ∈ {1, 2, 5}.
    pub fn run(&self, cache: &SolveCache, metrics: &MetricsRegistry) -> FleetResult {
        let shards = self.shard_ranges();
        metrics.counter("fleet.flows").add(self.config.n_flows as u64);
        metrics.counter("fleet.shards").add(shards.len() as u64);
        let shard_runs: Vec<Vec<FlowRun>> =
            par_map(&shards, |range| self.run_shard(range.clone(), cache, metrics));
        self.merge(shard_runs, cache, metrics)
    }

    /// The retained pre-calendar fleet path: identical shard partition and
    /// merge, but every flow runs the legacy sequential per-packet loop.
    /// Kept as the oracle [`run`](Self::run) is proven against.
    pub fn run_reference(&self, cache: &SolveCache, metrics: &MetricsRegistry) -> FleetResult {
        let shards = self.shard_ranges();
        metrics.counter("fleet.flows").add(self.config.n_flows as u64);
        metrics.counter("fleet.shards").add(shards.len() as u64);
        let shard_runs: Vec<Vec<FlowRun>> = par_map(&shards, |range| {
            range
                .clone()
                .map(|flow| self.run_flow_reference(flow, cache, metrics))
                .collect()
        });
        self.merge(shard_runs, cache, metrics)
    }

    fn merge(
        &self,
        shard_runs: Vec<Vec<FlowRun>>,
        cache: &SolveCache,
        metrics: &MetricsRegistry,
    ) -> FleetResult {
        let cfg = &self.config;
        let mut flows = Vec::with_capacity(cfg.n_flows);
        let mut all_delays = Vec::new();
        let mut merged = Snapshot::default();
        let mut delivered_bits = 0.0f64;
        let mut makespan = 0.0f64;
        let mut psnr_sum = 0.0f64;
        for run in shard_runs.into_iter().flatten() {
            all_delays.extend_from_slice(&run.delays);
            merged.merge(&run.outcome.snapshot);
            delivered_bits += run.outcome.throughput_bps * run.outcome.duration_s;
            makespan = makespan.max(run.outcome.duration_s);
            psnr_sum += run.outcome.psnr_eve_db;
            flows.push(run.outcome);
        }
        all_delays.sort_by(f64::total_cmp);
        let packet_count = all_delays.len().max(1) as f64;
        let mean_delay_s = all_delays.iter().sum::<f64>() / packet_count;

        let stations = cfg.stations();
        let analytic = cache
            .delay(&self.params, stations, cfg.policy, metrics)
            .expect("calibration keeps the fleet policy stable");
        let queue_n = cache
            .queue_n(&self.params, stations, cfg.policy, metrics)
            .expect("calibration keeps the fleet policy stable");

        FleetResult {
            stations,
            analytic,
            analytic_n_sojourn_s: queue_n.mean_sojourn_s,
            mean_delay_s,
            p50_delay_s: percentile(&all_delays, 0.50),
            p95_delay_s: percentile(&all_delays, 0.95),
            p99_delay_s: percentile(&all_delays, 0.99),
            aggregate_throughput_bps: delivered_bits / makespan.max(f64::MIN_POSITIVE),
            psnr_eve_db: psnr_sum / flows.len().max(1) as f64,
            merged,
            flows,
        }
    }

    /// Per-flow cache traffic and stream setup, shared by both paths: the
    /// same three solve queries the legacy loop issued per flow (all hits
    /// after warm-up — nothing here re-solves), the flow's calibrated
    /// parameters with the cell's DCF operating point written in
    /// explicitly — so the coupling "live station count → every flow's
    /// backoff" stays visible in the flow setup itself — and the flow's
    /// own RNG stream and registry.
    fn flow_setup(
        &self,
        flow: usize,
        cache: &SolveCache,
        metrics: &MetricsRegistry,
    ) -> (ScenarioParams, StdRng, MetricsRegistry) {
        let cfg = &self.config;
        let dcf = cache
            .dcf(&Self::dcf_model(cfg), metrics)
            .expect("validated at prepare");
        let _ = cache.delay(&self.params, cfg.stations(), cfg.policy, metrics);
        let _ = cache.queue_n(&self.params, cfg.stations(), cfg.policy, metrics);
        let mut params = self.params.clone();
        params.dcf = dcf;
        (params, flow_rng(cfg.seed, flow), MetricsRegistry::enabled())
    }

    /// One shard as a discrete-event drain: build a [`SenderFlowMachine`]
    /// per flow (drawing each flow's arrival process from its own stream,
    /// in flow order — exactly what the sequential loop drew first), then
    /// run them all on one calendar keyed by global flow id.
    ///
    /// [`SenderFlowMachine`]: thrifty_sim::sender::SenderFlowMachine
    fn run_shard(
        &self,
        range: std::ops::Range<usize>,
        cache: &SolveCache,
        metrics: &MetricsRegistry,
    ) -> Vec<FlowRun> {
        let cfg = &self.config;
        let mut params_v = Vec::with_capacity(range.len());
        let mut rngs = Vec::with_capacity(range.len());
        let mut registries = Vec::with_capacity(range.len());
        for flow in range.clone() {
            let (params, rng, registry) = self.flow_setup(flow, cache, metrics);
            params_v.push(params);
            rngs.push(rng);
            registries.push(registry);
        }
        // One packetization per shard; it is a pure function of the shared
        // stream, so every flow sees identical packets.
        let packets = Packetizer::default().packetize(&self.stream);
        let machines = params_v
            .iter()
            .zip(rngs.iter_mut())
            .zip(registries.iter())
            .map(|((params, rng), registry)| {
                SenderSim::new(params, cfg.policy)
                    .flow_machine(&self.stream, &packets, rng, registry)
            })
            .collect();
        let mut exec = Executor::new(machines, range.start as u64);
        exec.run(&mut ());
        exec.into_machines()
            .into_iter()
            .zip(range)
            .zip(registries.iter())
            .map(|((machine, flow), registry)| {
                self.outcome_of(flow, &machine.finish(), registry.snapshot())
            })
            .collect()
    }

    /// One flow through the retained sequential loop — the pre-calendar
    /// hot path, kept verbatim for [`run_reference`](Self::run_reference).
    fn run_flow_reference(
        &self,
        flow: usize,
        cache: &SolveCache,
        metrics: &MetricsRegistry,
    ) -> FlowRun {
        let (params, mut rng, registry) = self.flow_setup(flow, cache, metrics);
        let summary = SenderSim::new(&params, self.config.policy).run_metered_reference(
            &self.stream,
            &mut rng,
            &registry,
        );
        self.outcome_of(flow, &summary, registry.snapshot())
    }

    fn outcome_of(&self, flow: usize, summary: &SenderSummary, snapshot: Snapshot) -> FlowRun {
        let cfg = &self.config;
        let sens = cfg.motion.sensitivity_fraction();
        let decoder = RefreshingDecoder::new(cfg.motion.p_refresh_fraction());
        let eve_flags = summary.eavesdropper_frame_flags(cfg.frames, sens);
        let eve_rec = decoder.reconstruct(&self.clip, &eve_flags, cfg.gop_size);
        let eve_q = measure_quality(&self.clip, &eve_rec);

        let mut delays: Vec<f64> = summary.records.iter().map(|r| r.delay_s()).collect();
        delays.sort_by(f64::total_cmp);
        let delivered = summary.records.iter().filter(|r| r.delivered).count();
        let delivered_bits: f64 = summary
            .records
            .iter()
            .filter(|r| r.delivered)
            .map(|r| r.bytes as f64 * 8.0)
            .sum();
        let duration = summary.duration_s.max(f64::MIN_POSITIVE);
        let outcome = FlowOutcome {
            flow,
            packets: summary.records.len(),
            delivered,
            mean_delay_s: summary.mean_delay_s,
            p50_delay_s: percentile(&delays, 0.50),
            p95_delay_s: percentile(&delays, 0.95),
            p99_delay_s: percentile(&delays, 0.99),
            throughput_bps: delivered_bits / duration,
            psnr_eve_db: eve_q.psnr_of_mean_mse,
            duration_s: summary.duration_s,
            snapshot,
        };
        FlowRun { outcome, delays }
    }
}

/// The **pre-fleet, pre-calendar single-sender path**, bypassing every
/// fleet mechanism: plain [`ScenarioParams::calibrated`] (which runs its
/// own DCF solve), the sequential legacy [`SenderSim`] loop on
/// `flow_rng(seed, 0)`, no cache, no shards, no calendar, no merge.
/// `reproduce fleet` asserts the engine's N = 1 cell — which runs
/// event-driven — reproduces this outcome bit for bit, making the gate a
/// standing equivalence proof between the two execution engines at the
/// full paper configuration.
pub fn single_sender_reference(config: &FleetConfig) -> FlowOutcome {
    let params = ScenarioParams::calibrated(
        config.motion,
        config.gop_size,
        config.device,
        config.stations(),
        config.target_rho,
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stream =
        StatisticalEncoder::new(config.motion, config.gop_size).encode(config.frames, &mut rng);
    let scene = SceneGenerator::new(SceneConfig {
        resolution: config.resolution,
        motion: config.motion,
        seed: config.seed,
        fps: 30.0,
    });
    let clip = scene.clip(config.frames);

    let registry = MetricsRegistry::enabled();
    let mut rng = flow_rng(config.seed, 0);
    let summary =
        SenderSim::new(&params, config.policy).run_metered_reference(&stream, &mut rng, &registry);

    // Same scoring arithmetic as the engine, restated independently.
    let engine = FleetEngine {
        config: *config,
        params,
        stream,
        clip,
    };
    engine.outcome_of(0, &summary, registry.snapshot()).outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_analytic::policy::EncryptionMode;
    use thrifty_crypto::Algorithm;

    fn small(n_flows: usize) -> FleetConfig {
        let mut cfg = FleetConfig::paper_fleet(
            n_flows,
            Policy::new(Algorithm::Aes256, EncryptionMode::IFrames),
        );
        cfg.frames = 60;
        cfg
    }

    fn run(cfg: FleetConfig) -> FleetResult {
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        FleetEngine::prepare(cfg, &cache, &metrics).run(&cache, &metrics)
    }

    #[test]
    fn n1_is_bit_identical_to_the_single_sender_path() {
        let cfg = small(1);
        let fleet = run(cfg);
        let reference = single_sender_reference(&cfg);
        assert_eq!(fleet.flows.len(), 1);
        assert!(
            fleet.flows[0].bit_identical(&reference),
            "fleet N=1 {:?} vs single-sender {:?}",
            fleet.flows[0].mean_delay_s,
            reference.mean_delay_s
        );
    }

    #[test]
    fn event_engine_matches_reference_engine() {
        // The calendar drain against the retained sequential loop, at the
        // flow counts the issue pins: every flow, every aggregate and the
        // merged snapshot bit-identical.
        for n in [1usize, 2, 5] {
            let cfg = small(n);
            let run_with = |event: bool| {
                let cache = SolveCache::new();
                let metrics = MetricsRegistry::enabled();
                let engine = FleetEngine::prepare(cfg, &cache, &metrics);
                if event {
                    engine.run(&cache, &metrics)
                } else {
                    engine.run_reference(&cache, &metrics)
                }
            };
            let event = run_with(true);
            let reference = run_with(false);
            assert!(
                event.bit_identical(&reference),
                "event vs reference diverged at N={n}"
            );
        }
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut a_cfg = small(6);
        a_cfg.shards = 1;
        let mut b_cfg = small(6);
        b_cfg.shards = 3;
        let a = run(a_cfg);
        let b = run(b_cfg);
        assert!(a.bit_identical(&b), "sharding changed the outcome");
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let a = run(small(5));
        let b = run(small(5));
        assert!(a.bit_identical(&b));
        assert_eq!(a.merged.to_json(), b.merged.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small(3);
        let a = run(cfg);
        cfg.seed = 8;
        let b = run(cfg);
        assert!(!a.bit_identical(&b), "seed must matter");
    }

    #[test]
    fn contention_grows_with_fleet_size() {
        let small_fleet = run(small(2));
        let big_fleet = run(small(25));
        assert_eq!(small_fleet.stations, 6);
        assert_eq!(big_fleet.stations, 29);
        // More contenders -> worse channel -> higher analytic delay, and
        // each flow's goodput shrinks.
        assert!(
            big_fleet.analytic.mean_delay_s > small_fleet.analytic.mean_delay_s,
            "analytic {} vs {}",
            big_fleet.analytic.mean_delay_s,
            small_fleet.analytic.mean_delay_s
        );
        let mean_tp = |r: &FleetResult| {
            r.flows.iter().map(|f| f.throughput_bps).sum::<f64>() / r.flows.len() as f64
        };
        assert!(mean_tp(&big_fleet) < mean_tp(&small_fleet));
    }

    #[test]
    fn cache_traffic_is_deterministic_and_mostly_hits() {
        let cfg = small(8);
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let engine = FleetEngine::prepare(cfg, &cache, &metrics);
        engine.run(&cache, &metrics);
        let snap = metrics.snapshot();
        // prepare: 1 dcf miss. flows: 8 x (dcf + delay + queue_n) = 24
        // queries, of which delay and queue_n miss once each. run(): 2 more
        // hits for the result fields.
        assert_eq!(snap.counter(SolveCache::MISSES), 3);
        assert_eq!(snap.counter(SolveCache::HITS), 24);
        let rate = SolveCache::hit_rate(&snap).unwrap();
        assert!(rate > 0.85, "hit rate {rate}");
    }

    #[test]
    fn cache_capacity_changes_no_figure_value() {
        // Two cells with different station counts sharing one capacity-1
        // cache: the second cell's keys evict the first's in every family,
        // and re-preparing the first cell re-solves from scratch — yet
        // every value (flows, aggregates, merged snapshots) stays
        // bit-identical to fresh unbounded-cache runs, because solves are
        // pure and the eviction counters land in the cell registry, not in
        // any flow's snapshot.
        let cell_a = small(4);
        let cell_b = small(6); // different live station count -> new keys
        let baseline = |cfg: FleetConfig| {
            let cache = SolveCache::new();
            let metrics = MetricsRegistry::enabled();
            FleetEngine::prepare(cfg, &cache, &metrics).run(&cache, &metrics)
        };
        let (base_a, base_b) = (baseline(cell_a), baseline(cell_b));

        let shared = SolveCache::with_capacity(1);
        let metrics = MetricsRegistry::enabled();
        let tight_a = FleetEngine::prepare(cell_a, &shared, &metrics).run(&shared, &metrics);
        let tight_b = FleetEngine::prepare(cell_b, &shared, &metrics).run(&shared, &metrics);
        // Cell A again: its keys were evicted by B, forcing re-solves.
        let tight_a2 = FleetEngine::prepare(cell_a, &shared, &metrics).run(&shared, &metrics);

        assert!(tight_a.bit_identical(&base_a), "capacity changed cell A");
        assert!(tight_b.bit_identical(&base_b), "capacity changed cell B");
        assert!(tight_a2.bit_identical(&base_a), "re-solve changed cell A");
        let snap = metrics.snapshot();
        assert!(
            snap.counter(SolveCache::EVICTIONS) > 0,
            "a shared capacity-1 cache across cells must evict"
        );
    }

    #[test]
    fn analytic_solvers_agree() {
        let r = run(small(10));
        assert!(
            r.cross_solver_rel() < 1e-6,
            "2-state vs n-state residual {}",
            r.cross_solver_rel()
        );
    }

    #[test]
    fn merged_snapshot_accumulates_every_flow() {
        let r = run(small(4));
        let per_flow: u64 = r
            .flows
            .iter()
            .map(|f| f.snapshot.counter("sim.packets.I") + f.snapshot.counter("sim.packets.P"))
            .sum();
        let merged = r.merged.counter("sim.packets.I") + r.merged.counter("sim.packets.P");
        assert_eq!(per_flow, merged);
        assert_eq!(
            r.flows.iter().map(|f| f.packets).sum::<usize>() as u64,
            merged
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let r = run(small(3));
        assert!(r.p50_delay_s <= r.p95_delay_s);
        assert!(r.p95_delay_s <= r.p99_delay_s);
        for f in &r.flows {
            assert!(f.p50_delay_s <= f.p95_delay_s && f.p95_delay_s <= f.p99_delay_s);
            assert!(f.mean_delay_s > 0.0 && f.throughput_bps > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_rejected() {
        let cfg = small(0);
        let cache = SolveCache::new();
        let metrics = MetricsRegistry::enabled();
        let _ = FleetEngine::prepare(cfg, &cache, &metrics);
    }
}
