//! Per-flow RNG stream derivation.
//!
//! Every flow in a fleet gets its own [`StdRng`], seeded from the run's
//! master seed mixed with a stable per-flow tag — the same
//! FNV-1a + SplitMix64 discipline `thrifty-faults` uses for fault sites.
//! A flow's draw sequence therefore depends on `(seed, flow id)` alone:
//! adding or removing flows, or re-partitioning them across shards, never
//! changes what any *other* flow sees, which is what makes an N-flow run
//! bit-reproducible and shard-count invariant.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a of a byte string (same constants as the offline proptest drop-in
/// and `thrifty-faults`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finaliser: decorrelates the master seed and the flow tag so
/// nearby seeds do not produce correlated flow streams.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream for flow `flow` under master seed `seed`.
pub fn flow_rng(seed: u64, flow: usize) -> StdRng {
    let tag = format!("fleet.flow/{flow}");
    StdRng::seed_from_u64(mix(seed.wrapping_add(fnv1a(tag.as_bytes()))))
}

/// A named substream of flow `flow`: the scale path splits each flow into
/// an **arrival** and a **service** stream so arrivals can be generated
/// lazily (one draw per event) instead of precomputed as a batch, without
/// the two processes stepping on each other's draws.
///
/// The tag is hashed without per-flow string formatting — FNV-1a over the
/// tag bytes continued over the flow id's little-endian bytes — so deriving
/// 10^6 substreams costs no allocation.
pub fn flow_substream(seed: u64, flow: u64, tag: &str) -> StdRng {
    let mut h = fnv1a(tag.as_bytes());
    for b in flow.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(mix(seed.wrapping_add(h)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(rng: &mut StdRng) -> Vec<u64> {
        (0..8).map(|_| rng.gen_range(0u64..u64::MAX)).collect()
    }

    #[test]
    fn flow_streams_are_deterministic() {
        let a = draws(&mut flow_rng(42, 3));
        let b = draws(&mut flow_rng(42, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn flows_get_independent_streams() {
        let a = draws(&mut flow_rng(42, 0));
        let b = draws(&mut flow_rng(42, 1));
        assert_ne!(a, b, "two flows must not share a stream");
    }

    #[test]
    fn seeds_separate_runs() {
        let a = draws(&mut flow_rng(1, 0));
        let b = draws(&mut flow_rng(2, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn many_flows_all_distinct() {
        let mut streams: Vec<Vec<u64>> = (0..100).map(|f| draws(&mut flow_rng(7, f))).collect();
        streams.sort();
        streams.dedup();
        assert_eq!(streams.len(), 100, "100 flows must yield 100 streams");
    }

    #[test]
    fn substreams_are_distinct_per_tag_and_flow() {
        let mut streams: Vec<Vec<u64>> = (0..50u64)
            .flat_map(|f| {
                ["scale.arrivals", "scale.service"]
                    .into_iter()
                    .map(move |tag| (f, tag))
            })
            .map(|(f, tag)| draws(&mut flow_substream(7, f, tag)))
            .collect();
        streams.sort();
        streams.dedup();
        assert_eq!(streams.len(), 100, "50 flows x 2 tags must yield 100 streams");
        // And deterministic.
        assert_eq!(
            draws(&mut flow_substream(7, 3, "scale.arrivals")),
            draws(&mut flow_substream(7, 3, "scale.arrivals"))
        );
    }
}
