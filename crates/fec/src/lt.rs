//! LT encode and belief-propagation peeling decode.
//!
//! Symbol selection is **seed-deterministic**: the neighbour set of encoded
//! symbol `id` is a pure function of `(stream seed, block id, symbol id, k)`,
//! derived through the same FNV-1a + SplitMix64 discipline as
//! `thrifty_fleet::rng::flow_substream`. The decoder therefore regenerates
//! neighbour sets from the wire header alone — no degree or index list is
//! ever transmitted.
//!
//! The first `k` symbol ids form a **systematic prefix**: id `i < k` is a
//! verbatim copy of source symbol `i`. Repair ids `≥ k` are XORs of a
//! robust-soliton-sampled neighbour set. At zero loss the receiver thus
//! reconstructs the block byte-for-byte without running the peeler; under
//! loss the repair symbols feed the ripple.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::degree::RobustSoliton;

/// FNV-1a over a byte string (workspace-standard constants).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finaliser, decorrelating nearby seeds/tags.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream that generates encoded symbol `symbol_id` of block
/// `block` under `seed`. Allocation-free: FNV-1a over the domain tag
/// continued over the block and symbol ids' little-endian bytes.
pub fn symbol_rng(seed: u64, block: u32, symbol_id: u32) -> StdRng {
    let mut h = fnv1a(b"fec.symbol");
    for b in block.to_le_bytes().into_iter().chain(symbol_id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(mix(seed.wrapping_add(h)))
}

/// Errors from block geometry validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FecError {
    /// The source block was empty.
    EmptyBlock,
    /// `symbol_len` was zero.
    ZeroSymbolLen,
    /// The block needs more than `u16::MAX` source symbols.
    TooManySymbols {
        /// Source symbols the block would require.
        needed: usize,
    },
}

impl std::fmt::Display for FecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FecError::EmptyBlock => write!(f, "fountain block must carry at least one byte"),
            FecError::ZeroSymbolLen => write!(f, "fountain symbol length must be nonzero"),
            FecError::TooManySymbols { needed } => {
                write!(f, "fountain block needs {needed} source symbols (max 65535)")
            }
        }
    }
}

impl std::error::Error for FecError {}

/// The neighbour (source-symbol index) set of encoded symbol `symbol_id`.
///
/// Systematic prefix: ids `< k` have the single neighbour `id`. Repair ids
/// draw a robust-soliton degree, then pick that many **distinct** indices
/// by rejection over the shared seeded stream; indices are returned in
/// draw order (the XOR is order-independent, the determinism is not).
pub fn neighbors(seed: u64, block: u32, symbol_id: u32, dist: &RobustSoliton) -> Vec<usize> {
    let k = dist.k();
    if (symbol_id as usize) < k {
        return vec![symbol_id as usize];
    }
    let mut rng = symbol_rng(seed, block, symbol_id);
    let degree = dist.degree_for_unit(rng.gen_range(0.0..1.0));
    let mut picked: Vec<usize> = Vec::with_capacity(degree);
    while picked.len() < degree {
        let idx = rng.gen_range(0..k);
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked
}

/// LT encoder over one source block.
///
/// The block is zero-padded to `k × symbol_len`; `block_len` remembers the
/// true byte length so decode can strip the pad.
#[derive(Debug, Clone)]
pub struct BlockEncoder {
    padded: Vec<u8>,
    block_len: usize,
    symbol_len: usize,
    k: usize,
    seed: u64,
    block: u32,
    dist: RobustSoliton,
}

impl BlockEncoder {
    /// Encoder for `data` split into `symbol_len`-byte source symbols.
    pub fn new(data: &[u8], symbol_len: usize, seed: u64, block: u32) -> Result<Self, FecError> {
        if data.is_empty() {
            return Err(FecError::EmptyBlock);
        }
        if symbol_len == 0 {
            return Err(FecError::ZeroSymbolLen);
        }
        let k = data.len().div_ceil(symbol_len);
        if k > u16::MAX as usize {
            return Err(FecError::TooManySymbols { needed: k });
        }
        let mut padded = data.to_vec();
        padded.resize(k * symbol_len, 0);
        Ok(BlockEncoder {
            padded,
            block_len: data.len(),
            symbol_len,
            k,
            seed,
            block,
            dist: RobustSoliton::with_defaults(k),
        })
    }

    /// Number of source symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// True (unpadded) block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Source symbol length in bytes.
    pub fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    /// The degree distribution in use (shared shape with the decoder).
    pub fn distribution(&self) -> &RobustSoliton {
        &self.dist
    }

    /// Source symbol `i` (zero-padded tail included).
    pub fn source_symbol(&self, i: usize) -> &[u8] {
        &self.padded[i * self.symbol_len..(i + 1) * self.symbol_len]
    }

    /// Encoded symbol `symbol_id`: XOR of its neighbour source symbols.
    pub fn encode(&self, symbol_id: u32) -> Vec<u8> {
        let mut out = vec![0u8; self.symbol_len];
        for idx in neighbors(self.seed, self.block, symbol_id, &self.dist) {
            for (o, s) in out.iter_mut().zip(self.source_symbol(idx)) {
                *o ^= s;
            }
        }
        out
    }
}

/// One buffered (not yet peeled) encoded symbol inside the decoder.
#[derive(Debug, Clone)]
struct PendingSymbol {
    /// Residual payload: original XOR all already-recovered neighbours.
    data: Vec<u8>,
    /// Neighbour indices not yet recovered. Unordered; emptied by peeling.
    neighbors: Vec<usize>,
}

/// Belief-propagation peeling decoder with an explicit ripple queue.
///
/// The **ripple** is a FIFO of source indices recovered but not yet
/// propagated. Processing order is therefore a pure function of the
/// `push` sequence: pop the oldest ripple entry, XOR it out of every
/// pending symbol that references it (in symbol arrival order), and any
/// pending symbol that drops to degree one releases its last neighbour
/// onto the back of the queue. Decode completes when all `k` source
/// symbols are recovered; it fails (for the symbols seen so far) when the
/// ripple drains with coverage incomplete.
#[derive(Debug, Clone)]
pub struct PeelingDecoder {
    k: usize,
    symbol_len: usize,
    block_len: usize,
    seed: u64,
    block: u32,
    dist: RobustSoliton,
    recovered: Vec<Option<Vec<u8>>>,
    recovered_count: usize,
    pending: Vec<PendingSymbol>,
    /// `by_source[i]` = indices into `pending` that still reference source
    /// symbol `i` (arrival order).
    by_source: Vec<Vec<usize>>,
    ripple: VecDeque<usize>,
    symbols_seen: u64,
}

impl PeelingDecoder {
    /// Decoder for a block of `k` source symbols of `symbol_len` bytes,
    /// `block_len` true bytes, matching an encoder keyed `(seed, block)`.
    pub fn new(
        k: usize,
        symbol_len: usize,
        block_len: usize,
        seed: u64,
        block: u32,
    ) -> Result<Self, FecError> {
        if k == 0 || block_len == 0 {
            return Err(FecError::EmptyBlock);
        }
        if symbol_len == 0 {
            return Err(FecError::ZeroSymbolLen);
        }
        if k > u16::MAX as usize {
            return Err(FecError::TooManySymbols { needed: k });
        }
        Ok(PeelingDecoder {
            k,
            symbol_len,
            block_len,
            seed,
            block,
            dist: RobustSoliton::with_defaults(k),
            recovered: vec![None; k],
            recovered_count: 0,
            pending: Vec::new(),
            by_source: vec![Vec::new(); k],
            ripple: VecDeque::new(),
            symbols_seen: 0,
        })
    }

    /// Number of source symbols recovered so far.
    pub fn recovered_count(&self) -> usize {
        self.recovered_count
    }

    /// Whether every source symbol has been recovered.
    pub fn is_complete(&self) -> bool {
        self.recovered_count == self.k
    }

    /// Encoded symbols accepted so far (including redundant ones).
    pub fn symbols_seen(&self) -> u64 {
        self.symbols_seen
    }

    /// Recovered source symbol `i`, if peeling has reached it.
    pub fn source_symbol(&self, i: usize) -> Option<&[u8]> {
        self.recovered.get(i).and_then(|s| s.as_deref())
    }

    /// Indices of source symbols still missing, ascending.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.k).filter(|&i| self.recovered[i].is_none()).collect()
    }

    /// Accept one received encoded symbol and run peeling to quiescence.
    /// Returns the number of source symbols newly recovered by this push.
    ///
    /// Symbols whose payload length disagrees with the block geometry are
    /// rejected (return 0) rather than poisoning the XOR algebra.
    pub fn push(&mut self, symbol_id: u32, data: &[u8]) -> usize {
        if data.len() != self.symbol_len {
            return 0;
        }
        self.symbols_seen += 1;
        let before = self.recovered_count;
        let mut residual = data.to_vec();
        let mut unknown: Vec<usize> = Vec::new();
        for idx in neighbors(self.seed, self.block, symbol_id, &self.dist) {
            match &self.recovered[idx] {
                Some(known) => {
                    for (r, s) in residual.iter_mut().zip(known) {
                        *r ^= s;
                    }
                }
                None => unknown.push(idx),
            }
        }
        match unknown.as_slice() {
            [] => {} // fully redundant
            &[only] => self.recover(only, residual),
            _ => {
                let slot = self.pending.len();
                for &idx in &unknown {
                    self.by_source[idx].push(slot);
                }
                self.pending.push(PendingSymbol { data: residual, neighbors: unknown });
            }
        }
        self.drain_ripple();
        self.recovered_count - before
    }

    /// Mark source symbol `idx` recovered and enqueue it on the ripple.
    fn recover(&mut self, idx: usize, data: Vec<u8>) {
        if self.recovered[idx].is_none() {
            self.recovered[idx] = Some(data);
            self.recovered_count += 1;
            self.ripple.push_back(idx);
        }
    }

    /// Propagate recovered symbols through the pending set, FIFO.
    fn drain_ripple(&mut self) {
        while let Some(idx) = self.ripple.pop_front() {
            let touched = std::mem::take(&mut self.by_source[idx]);
            for slot in touched {
                let released = {
                    let sym = &mut self.pending[slot];
                    let Some(pos) = sym.neighbors.iter().position(|&n| n == idx) else {
                        continue; // already peeled out of this symbol
                    };
                    sym.neighbors.swap_remove(pos);
                    let known = self.recovered[idx]
                        .as_ref()
                        // lint:allow(panic-unwrap): ripple entries are Some by construction (recover() fills the slot before enqueueing); the invariant is input-independent
                        .expect("ripple entries are recovered by construction");
                    for (r, s) in sym.data.iter_mut().zip(known) {
                        *r ^= s;
                    }
                    if let &[last] = sym.neighbors.as_slice() {
                        Some((last, std::mem::take(&mut sym.data)))
                    } else {
                        None
                    }
                };
                if let Some((last, data)) = released {
                    self.pending[slot].neighbors.clear();
                    self.recover(last, data);
                }
            }
        }
    }

    /// The reconstructed block, truncated to its true length; `None` until
    /// decode is complete.
    pub fn into_data(self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.k * self.symbol_len);
        for sym in self.recovered.into_iter() {
            // lint:allow(panic-unwrap): guarded by the is_complete() early return above — every slot is Some once recovered_count == k
            out.extend_from_slice(&sym.expect("complete decode recovered every symbol"));
        }
        out.truncate(self.block_len);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
    }

    #[test]
    fn systematic_prefix_is_verbatim_source() {
        let data = block(4000, 1);
        let enc = BlockEncoder::new(&data, 128, 99, 0).unwrap();
        for i in 0..enc.k() as u32 {
            assert_eq!(enc.encode(i), enc.source_symbol(i as usize));
        }
    }

    #[test]
    fn encode_is_seed_deterministic() {
        let data = block(5000, 2);
        let a = BlockEncoder::new(&data, 200, 7, 3).unwrap();
        let b = BlockEncoder::new(&data, 200, 7, 3).unwrap();
        let c = BlockEncoder::new(&data, 200, 8, 3).unwrap();
        let repair = a.k() as u32 + 5;
        assert_eq!(a.encode(repair), b.encode(repair));
        assert_ne!(a.encode(repair), c.encode(repair), "seed must steer repair symbols");
    }

    #[test]
    fn zero_loss_systematic_decode_roundtrips() {
        let data = block(7013, 3);
        let enc = BlockEncoder::new(&data, 256, 42, 1).unwrap();
        let mut dec =
            PeelingDecoder::new(enc.k(), enc.symbol_len(), enc.block_len(), 42, 1).unwrap();
        for id in 0..enc.k() as u32 {
            dec.push(id, &enc.encode(id));
        }
        assert!(dec.is_complete());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn repair_symbols_recover_erased_prefix_symbols() {
        let data = block(12_800, 4);
        let enc = BlockEncoder::new(&data, 128, 5, 2).unwrap();
        let k = enc.k() as u32;
        let mut dec =
            PeelingDecoder::new(enc.k(), enc.symbol_len(), enc.block_len(), 5, 2).unwrap();
        // Drop every third systematic symbol; stream repair ids until done.
        for id in (0..k).filter(|id| id % 3 != 0) {
            dec.push(id, &enc.encode(id));
        }
        assert!(!dec.is_complete());
        let mut id = k;
        while !dec.is_complete() && id < k + 3 * k {
            dec.push(id, &enc.encode(id));
            id += 1;
        }
        assert!(dec.is_complete(), "peeling stalled: missing {:?}", dec.missing());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn repair_only_decode_succeeds_with_modest_overhead() {
        let data = block(6400, 6);
        let enc = BlockEncoder::new(&data, 128, 11, 0).unwrap();
        let k = enc.k() as u32;
        let mut dec =
            PeelingDecoder::new(enc.k(), enc.symbol_len(), enc.block_len(), 11, 0).unwrap();
        // No systematic symbols at all: decode from repair ids only.
        let mut id = k;
        while !dec.is_complete() && id < k + 4 * k {
            dec.push(id, &enc.encode(id));
            id += 1;
        }
        assert!(dec.is_complete(), "repair-only decode stalled at {}", dec.recovered_count());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn wrong_length_symbols_are_rejected() {
        let data = block(1000, 7);
        let enc = BlockEncoder::new(&data, 100, 1, 0).unwrap();
        let mut dec =
            PeelingDecoder::new(enc.k(), enc.symbol_len(), enc.block_len(), 1, 0).unwrap();
        assert_eq!(dec.push(0, &[0u8; 99]), 0);
        assert_eq!(dec.symbols_seen(), 0);
        assert_eq!(dec.recovered_count(), 0);
    }

    #[test]
    fn duplicate_symbols_are_harmless() {
        let data = block(3000, 8);
        let enc = BlockEncoder::new(&data, 300, 2, 0).unwrap();
        let mut dec =
            PeelingDecoder::new(enc.k(), enc.symbol_len(), enc.block_len(), 2, 0).unwrap();
        for _ in 0..3 {
            for id in 0..enc.k() as u32 {
                dec.push(id, &enc.encode(id));
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn geometry_errors_are_typed() {
        assert_eq!(BlockEncoder::new(&[], 10, 0, 0).unwrap_err(), FecError::EmptyBlock);
        assert_eq!(BlockEncoder::new(&[1], 0, 0, 0).unwrap_err(), FecError::ZeroSymbolLen);
        assert!(matches!(
            BlockEncoder::new(&vec![0u8; 70_000], 1, 0, 0).unwrap_err(),
            FecError::TooManySymbols { needed: 70_000 }
        ));
        assert_eq!(
            PeelingDecoder::new(0, 10, 10, 0, 0).unwrap_err(),
            FecError::EmptyBlock
        );
        assert_eq!(
            PeelingDecoder::new(1, 0, 10, 0, 0).unwrap_err(),
            FecError::ZeroSymbolLen
        );
    }

    #[test]
    fn readme_example_decodes_through_its_lossy_channel() {
        // Pins the README's "Programmatic use" snippet: same data, seed
        // and loss pattern, so the documented assert stays true.
        let data = vec![7u8; 4000];
        let enc = BlockEncoder::new(&data, 500, 42, 0).unwrap();
        let mut dec = PeelingDecoder::new(enc.k(), 500, data.len(), 42, 0).unwrap();
        for id in 0..(enc.k() as u32 + 4) {
            if id != 2 {
                dec.push(id, &enc.encode(id));
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn decoder_neighbor_regeneration_matches_encoder() {
        let dist = RobustSoliton::with_defaults(50);
        for id in 0..200u32 {
            assert_eq!(neighbors(9, 4, id, &dist), neighbors(9, 4, id, &dist));
        }
        // Systematic ids map to themselves.
        assert_eq!(neighbors(9, 4, 7, &dist), vec![7]);
        // Repair neighbours are distinct indices within range.
        let n = neighbors(9, 4, 60, &dist);
        let mut sorted = n.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n.len());
        assert!(n.iter().all(|&i| i < 50));
    }
}
