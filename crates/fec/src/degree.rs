//! Robust-soliton degree distribution (Luby 2002).
//!
//! The ideal soliton ρ keeps the *expected* ripple at one recovered symbol
//! per peeling step; the robust correction τ adds a floor of low-degree
//! symbols plus a spike at degree `k/S` so the ripple survives variance
//! with probability ≥ 1 − δ at an overhead of only `Z ≈ 1 + O(√k·ln²(k/δ)/k)`.
//! The distribution is precomputed as a CDF and sampled by binary search,
//! so one degree draw costs one RNG word and O(log k).

/// Default robust-soliton `c` parameter (ripple-size scale).
pub const DEFAULT_C: f64 = 0.05;
/// Default robust-soliton decode-failure target δ.
pub const DEFAULT_DELTA: f64 = 0.05;

/// A precomputed robust-soliton distribution over degrees `1..=k`.
///
/// Construction is a pure function of `(k, c, delta)`; sampling consumes
/// exactly one `u64` from the caller's RNG, so encoder and decoder that
/// share a seeded stream sample identical degree sequences.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    k: usize,
    /// `cdf[d-1]` = P(degree ≤ d); strictly increasing, last element 1.0.
    cdf: Vec<f64>,
}

/// Why a [`RobustSoliton`] was rejected by
/// [`try_new`](RobustSoliton::try_new).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolitonError {
    /// `k == 0`: the distribution needs at least one source symbol.
    ZeroSymbols,
    /// `c` was NaN, infinite, zero or negative.
    BadC(f64),
    /// `delta` was NaN or outside the open interval `(0, 1)`.
    BadDelta(f64),
}

impl std::fmt::Display for SolitonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolitonError::ZeroSymbols => {
                write!(f, "robust soliton needs at least one source symbol")
            }
            SolitonError::BadC(v) => write!(f, "robust soliton c {v} must be finite and > 0"),
            SolitonError::BadDelta(v) => write!(f, "robust soliton delta {v} must be in (0, 1)"),
        }
    }
}

impl std::error::Error for SolitonError {}

impl RobustSoliton {
    /// The distribution for `k` source symbols, rejecting hostile
    /// parameters with a typed error instead of a panic.
    pub fn try_new(k: usize, c: f64, delta: f64) -> Result<Self, SolitonError> {
        if k == 0 {
            return Err(SolitonError::ZeroSymbols);
        }
        if !c.is_finite() || c <= 0.0 {
            return Err(SolitonError::BadC(c));
        }
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(SolitonError::BadDelta(delta));
        }
        Ok(Self::new(k, c, delta))
    }

    /// The distribution for `k` source symbols with explicit parameters.
    ///
    /// # Panics
    /// Panics if `k == 0`, `c <= 0`, or `delta` is outside `(0, 1)`.
    /// Prefer [`try_new`](Self::try_new) for untrusted input.
    pub fn new(k: usize, c: f64, delta: f64) -> Self {
        assert!(k >= 1, "robust soliton needs at least one source symbol");
        assert!(c > 0.0, "robust soliton c must be positive");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta must be in (0,1)");
        if k == 1 {
            return RobustSoliton { k, cdf: vec![1.0] };
        }
        let kf = k as f64;
        // Expected ripple size S = c·ln(k/δ)·√k, clamped into [1, k].
        let s = (c * (kf / delta).ln() * kf.sqrt()).clamp(1.0, kf);
        // Spike position k/S, clamped to a valid degree.
        let spike = ((kf / s).floor() as usize).clamp(1, k);
        let mut pdf = vec![0.0f64; k];
        for d in 1..=k {
            // Ideal soliton ρ(d).
            let rho = if d == 1 { 1.0 / kf } else { 1.0 / (d as f64 * (d as f64 - 1.0)) };
            // Robust correction τ(d).
            let tau = if d < spike {
                s / (d as f64 * kf)
            } else if d == spike {
                s * (s / delta).ln() / kf
            } else {
                0.0
            };
            pdf[d - 1] = rho + tau;
        }
        let z: f64 = pdf.iter().sum();
        let mut acc = 0.0;
        let cdf = pdf
            .iter()
            .map(|p| {
                acc += p / z;
                acc
            })
            .collect::<Vec<f64>>();
        let mut dist = RobustSoliton { k, cdf };
        // Pin the top of the CDF so a unit draw of exactly 1-ulp-below-1
        // still lands in range regardless of rounding in the partial sums.
        if let Some(last) = dist.cdf.last_mut() {
            *last = 1.0;
        }
        dist
    }

    /// The distribution with the workspace default `(c, δ)` parameters.
    pub fn with_defaults(k: usize) -> Self {
        Self::new(k, DEFAULT_C, DEFAULT_DELTA)
    }

    /// Number of source symbols the distribution ranges over.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Map a uniform variate `u ∈ [0, 1)` to a degree in `1..=k`
    /// (inverse-CDF by binary search). Deterministic in `u`.
    pub fn degree_for_unit(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c <= u) + 1
    }

    /// P(degree ≤ d); 1.0 for `d ≥ k`, 0 for `d == 0`.
    pub fn cdf(&self, d: usize) -> f64 {
        if d == 0 {
            0.0
        } else {
            self.cdf[(d - 1).min(self.k - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn try_new_rejects_hostile_parameters() {
        assert!(matches!(
            RobustSoliton::try_new(0, 0.1, 0.05),
            Err(SolitonError::ZeroSymbols)
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, f64::NAN, 0.05),
            Err(SolitonError::BadC(v)) if v.is_nan()
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, 0.0, 0.05),
            Err(SolitonError::BadC(v)) if v == 0.0
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, -0.1, 0.05),
            Err(SolitonError::BadC(v)) if v < 0.0
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, 0.1, f64::NAN),
            Err(SolitonError::BadDelta(v)) if v.is_nan()
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, 0.1, 0.0),
            Err(SolitonError::BadDelta(v)) if v == 0.0
        ));
        assert!(matches!(
            RobustSoliton::try_new(10, 0.1, 1.0),
            Err(SolitonError::BadDelta(v)) if v == 1.0
        ));
        assert!(RobustSoliton::try_new(10, 0.1, 0.05).is_ok());
    }

    #[test]
    fn degenerate_k1_always_degree_one() {
        let d = RobustSoliton::with_defaults(1);
        for u in [0.0, 0.3, 0.999_999] {
            assert_eq!(d.degree_for_unit(u), 1);
        }
    }

    #[test]
    fn degrees_stay_in_range_and_cover_low_degrees() {
        let dist = RobustSoliton::with_defaults(100);
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0usize;
        let mut twos = 0usize;
        for _ in 0..20_000 {
            let d = dist.degree_for_unit(rng.gen_range(0.0..1.0));
            assert!((1..=100).contains(&d), "degree {d} out of range");
            if d == 1 {
                ones += 1;
            }
            if d == 2 {
                twos += 1;
            }
        }
        // Degree 1 must exist (the ripple seeds) but be rare; degree 2
        // dominates (ρ(2) = 1/2 before normalisation).
        assert!(ones > 0, "no degree-1 symbols sampled");
        assert!(ones < 4_000, "degree-1 overrepresented: {ones}");
        assert!(twos > 5_000, "degree-2 underrepresented: {twos}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        for k in [1usize, 2, 3, 10, 64, 500] {
            let dist = RobustSoliton::with_defaults(k);
            let mut prev = 0.0;
            for d in 1..=k {
                let c = dist.cdf(d);
                assert!(c >= prev, "cdf not monotone at k={k} d={d}");
                prev = c;
            }
            assert_eq!(dist.cdf(k), 1.0);
            assert_eq!(dist.cdf(0), 0.0);
        }
    }

    #[test]
    fn mean_degree_is_logarithmic_not_linear() {
        let k = 200;
        let dist = RobustSoliton::with_defaults(k);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| dist.degree_for_unit(rng.gen_range(0.0..1.0)) as f64)
            .sum::<f64>()
            / n as f64;
        // Robust soliton mean is O(ln(k/δ)) ≈ 8-ish at k=200 — far below k.
        assert!(mean > 2.0 && mean < 25.0, "implausible mean degree {mean}");
    }
}
