//! `thrifty-fec` — a from-scratch LT fountain codec.
//!
//! Rateless erasure coding for the third protocol scenario: instead of
//! retransmitting lost packets (TCP) or abandoning them (UDP), the sender
//! emits a stream of XOR-coded symbols until the receiver has enough to
//! peel the source block back out. See DESIGN.md §10 for the degree
//! distribution, the ripple invariant, and the deterministic decode order.
//!
//! The crate is deliberately transport-agnostic: [`lt::BlockEncoder`] /
//! [`lt::PeelingDecoder`] speak `(seed, block, symbol_id)` coordinates, and
//! `thrifty-net`'s `FountainHeader` carries exactly those coordinates on
//! the wire. It is covered by the workspace determinism lint tier: no wall
//! clocks, ambient RNGs, or hash-ordered collections in non-test code.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod degree;
pub mod lt;

pub use degree::{RobustSoliton, SolitonError, DEFAULT_C, DEFAULT_DELTA};
pub use lt::{neighbors, symbol_rng, BlockEncoder, FecError, PeelingDecoder};
