//! Encryption policies (the paper's 𝒫).
//!
//! A *selection policy* is "(i) the encryption algorithm that is used for
//! protecting the transmitted packets, and (ii) the set of packets to be
//! encrypted" (Section 3). The evaluation sweeps four packet-selection
//! modes {none, P, I, all} (Table 1) plus the finer `I + α·P` mixtures of
//! Figure 9 / Table 2 and the half-I probe mentioned in Section 6.2.

use thrifty_crypto::Algorithm;
use thrifty_video::FrameType;

/// Which packets the sender encrypts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncryptionMode {
    /// Encrypt nothing (no privacy, no penalty).
    None,
    /// Encrypt every packet (full privacy, full penalty).
    All,
    /// Encrypt only packets belonging to I-frames.
    IFrames,
    /// Encrypt only packets belonging to P-frames.
    PFrames,
    /// Encrypt all I-frame packets plus fraction `0 ≤ α ≤ 1` of P-frame
    /// packets (Figure 9, Table 2).
    IPlusFractionP(f64),
    /// Encrypt a fraction `0 ≤ β ≤ 1` of I-frame packets only — the paper's
    /// "half of the I-frame packets" probe (Section 6.2).
    FractionI(f64),
}

impl EncryptionMode {
    /// The four modes of Table 1, in figure order (none, P, I, all).
    pub const TABLE1: [EncryptionMode; 4] = [
        EncryptionMode::None,
        EncryptionMode::PFrames,
        EncryptionMode::IFrames,
        EncryptionMode::All,
    ];

    /// Probability a packet of the given frame class is selected for
    /// encryption.
    pub fn encrypt_prob(&self, ftype: FrameType) -> f64 {
        match (self, ftype) {
            (EncryptionMode::None, _) => 0.0,
            (EncryptionMode::All, _) => 1.0,
            (EncryptionMode::IFrames, FrameType::I) => 1.0,
            (EncryptionMode::IFrames, FrameType::P) => 0.0,
            (EncryptionMode::PFrames, FrameType::I) => 0.0,
            (EncryptionMode::PFrames, FrameType::P) => 1.0,
            (EncryptionMode::IPlusFractionP(alpha), FrameType::I) => {
                Self::check_fraction(*alpha);
                1.0
            }
            (EncryptionMode::IPlusFractionP(alpha), FrameType::P) => {
                Self::check_fraction(*alpha);
                *alpha
            }
            (EncryptionMode::FractionI(beta), FrameType::I) => {
                Self::check_fraction(*beta);
                *beta
            }
            (EncryptionMode::FractionI(_), FrameType::P) => 0.0,
        }
    }

    fn check_fraction(f: f64) {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
    }

    /// Overall fraction of encrypted packets `q^(𝒫)` given the I-packet
    /// share `p_I` of the stream (eq. 4 / Section 4.3).
    pub fn encrypted_fraction(&self, p_i: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_i), "p_I must be a probability");
        p_i * self.encrypt_prob(FrameType::I) + (1.0 - p_i) * self.encrypt_prob(FrameType::P)
    }

    /// Deterministic per-packet decision, for simulation. `unit` must be a
    /// uniform [0,1) draw (or a hash) attached to the packet.
    pub fn should_encrypt(&self, ftype: FrameType, unit: f64) -> bool {
        unit < self.encrypt_prob(ftype)
    }

    /// Figure-label string ("none", "P", "I", "all", "I+20%P", "50%I").
    pub fn label(&self) -> String {
        match self {
            EncryptionMode::None => "none".into(),
            EncryptionMode::All => "all".into(),
            EncryptionMode::IFrames => "I".into(),
            EncryptionMode::PFrames => "P".into(),
            EncryptionMode::IPlusFractionP(a) => format!("I+{:.0}%P", a * 100.0),
            EncryptionMode::FractionI(b) => format!("{:.0}%I", b * 100.0),
        }
    }
}

impl std::fmt::Display for EncryptionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from parsing an [`EncryptionMode`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModeError(String);

impl std::fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown encryption mode '{}' (expected none, I, P, all, I+<n>%P or <n>%I)",
            self.0
        )
    }
}

impl std::error::Error for ParseModeError {}

impl std::str::FromStr for EncryptionMode {
    type Err = ParseModeError;

    /// Parse the figure-label syntax produced by [`EncryptionMode::label`]:
    /// `none`, `I`, `P`, `all`, `I+20%P`, `50%I` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        match t.to_ascii_lowercase().as_str() {
            "none" => return Ok(EncryptionMode::None),
            "all" => return Ok(EncryptionMode::All),
            "i" => return Ok(EncryptionMode::IFrames),
            "p" => return Ok(EncryptionMode::PFrames),
            _ => {}
        }
        let lower = t.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("i+") {
            if let Some(num) = rest.strip_suffix("%p") {
                if let Ok(pct) = num.trim().parse::<f64>() {
                    if (0.0..=100.0).contains(&pct) {
                        return Ok(EncryptionMode::IPlusFractionP(pct / 100.0));
                    }
                }
            }
        }
        if let Some(num) = lower.strip_suffix("%i") {
            if let Ok(pct) = num.trim().parse::<f64>() {
                if (0.0..=100.0).contains(&pct) {
                    return Ok(EncryptionMode::FractionI(pct / 100.0));
                }
            }
        }
        Err(ParseModeError(t.to_string()))
    }
}

/// A full selection policy 𝒫 = (cipher, packet-selection rule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Symmetric cipher used for selected packets.
    pub algorithm: Algorithm,
    /// Which packets are selected.
    pub mode: EncryptionMode,
}

impl Policy {
    /// Construct a policy.
    pub fn new(algorithm: Algorithm, mode: EncryptionMode) -> Self {
        Policy { algorithm, mode }
    }

    /// The twelve policies of Section 6.1 (3 ciphers × 4 modes).
    pub fn all_table1() -> Vec<Policy> {
        let mut out = Vec::with_capacity(12);
        for algorithm in Algorithm::ALL {
            for mode in EncryptionMode::TABLE1 {
                out.push(Policy { algorithm, mode });
            }
        }
        out
    }

    /// Figure label, e.g. "AES256/I".
    pub fn label(&self) -> String {
        format!("{}/{}", self.algorithm, self.mode)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_modes() {
        assert_eq!(EncryptionMode::None.encrypted_fraction(0.3), 0.0);
        assert_eq!(EncryptionMode::All.encrypted_fraction(0.3), 1.0);
    }

    #[test]
    fn class_selective_modes() {
        let p_i = 0.25;
        assert_eq!(EncryptionMode::IFrames.encrypted_fraction(p_i), 0.25);
        assert_eq!(EncryptionMode::PFrames.encrypted_fraction(p_i), 0.75);
        assert_eq!(
            EncryptionMode::IFrames.encrypt_prob(FrameType::I),
            1.0
        );
        assert_eq!(
            EncryptionMode::IFrames.encrypt_prob(FrameType::P),
            0.0
        );
    }

    #[test]
    fn mixture_mode_math() {
        let m = EncryptionMode::IPlusFractionP(0.2);
        assert_eq!(m.encrypt_prob(FrameType::I), 1.0);
        assert_eq!(m.encrypt_prob(FrameType::P), 0.2);
        let p_i = 0.16;
        let expected = p_i + (1.0 - p_i) * 0.2;
        assert!((m.encrypted_fraction(p_i) - expected).abs() < 1e-12);
    }

    #[test]
    fn fraction_i_mode() {
        let m = EncryptionMode::FractionI(0.5);
        assert_eq!(m.encrypt_prob(FrameType::I), 0.5);
        assert_eq!(m.encrypt_prob(FrameType::P), 0.0);
        assert_eq!(m.label(), "50%I");
    }

    #[test]
    fn should_encrypt_thresholds() {
        let m = EncryptionMode::IPlusFractionP(0.3);
        assert!(m.should_encrypt(FrameType::P, 0.29));
        assert!(!m.should_encrypt(FrameType::P, 0.31));
        assert!(m.should_encrypt(FrameType::I, 0.99));
        assert!(!EncryptionMode::None.should_encrypt(FrameType::I, 0.0));
    }

    #[test]
    fn twelve_policies() {
        let all = Policy::all_table1();
        assert_eq!(all.len(), 12);
        let labels: std::collections::BTreeSet<String> =
            all.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 12);
        assert!(labels.contains("AES256/I"));
        assert!(labels.contains("3DES/all"));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn invalid_fraction_panics() {
        EncryptionMode::IPlusFractionP(1.5).encrypt_prob(FrameType::P);
    }

    #[test]
    fn mode_labels_roundtrip_through_fromstr() {
        for mode in [
            EncryptionMode::None,
            EncryptionMode::All,
            EncryptionMode::IFrames,
            EncryptionMode::PFrames,
            EncryptionMode::IPlusFractionP(0.2),
            EncryptionMode::FractionI(0.5),
        ] {
            let parsed: EncryptionMode = mode.label().parse().unwrap();
            assert_eq!(parsed, mode, "label {}", mode.label());
        }
        // Case-insensitive and whitespace-tolerant.
        assert_eq!(" ALL ".parse::<EncryptionMode>().unwrap(), EncryptionMode::All);
        assert_eq!(
            "i+25%p".parse::<EncryptionMode>().unwrap(),
            EncryptionMode::IPlusFractionP(0.25)
        );
        assert!("garbage".parse::<EncryptionMode>().is_err());
        assert!("I+200%P".parse::<EncryptionMode>().is_err());
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(EncryptionMode::None.label(), "none");
        assert_eq!(EncryptionMode::PFrames.label(), "P");
        assert_eq!(EncryptionMode::IFrames.label(), "I");
        assert_eq!(EncryptionMode::All.label(), "all");
        assert_eq!(EncryptionMode::IPlusFractionP(0.2).label(), "I+20%P");
    }
}
