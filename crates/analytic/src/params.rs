//! Scenario parameters — the "minimal measurements" of Figure 1.
//!
//! The framework is calibrated from a handful of sample measurements
//! (Section 6.1): packet statistics of the coded stream, the 2-MMPP arrival
//! parameters, per-cipher encryption cost models, channel operating point
//! (`p_s`, `λ_b`) and airtime parameters. [`ScenarioParams`] bundles all of
//! them; [`ScenarioParams::calibrated`] builds a self-consistent scenario
//! for a (motion, GOP, device) triple the way the experiments do.

use thrifty_crypto::{Algorithm, CostModel, CostSample};
use thrifty_net::dcf::{DcfModel, DcfSolution, PhyParams};
use thrifty_queueing::mmpp::Mmpp2;
use thrifty_video::encoder::StatisticalEncoder;
use thrifty_video::motion::MotionLevel;
use thrifty_video::packet::{PacketStats, Packetizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A device the app runs on (Table 1's wireless devices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name used in figure labels.
    pub name: &'static str,
    /// CPU clock, GHz — scales per-byte cipher cost.
    pub clock_ghz: f64,
    /// Fixed per-encrypted-segment overhead (JNI boundary, key/IV setup), s.
    pub segment_overhead_s: f64,
}

/// Samsung Galaxy S-II: 1.2 GHz dual-core Cortex-A9.
pub const SAMSUNG_GALAXY_S2: DeviceSpec = DeviceSpec {
    name: "Samsung S-II",
    clock_ghz: 1.2,
    segment_overhead_s: 80e-6,
};

/// HTC Amaze 4G: 1.5 GHz dual-core Snapdragon S3.
pub const HTC_AMAZE_4G: DeviceSpec = DeviceSpec {
    name: "HTC Amaze 4G",
    clock_ghz: 1.5,
    segment_overhead_s: 60e-6,
};

/// The channel packet error rate every calibrated scenario assumes (the
/// non-collision radio losses folded into `p_s`). Exposed so multi-flow
/// engines can pre-solve the same [`DcfModel`] the calibration would.
pub const DEFAULT_CHANNEL_PER: f64 = 0.02;

/// Derives the 2-MMPP arrival model from stream structure and producer
/// pacing (Section 4.2.1: phase 1 = dense I-fragment trains, phase 2 =
/// sparse P packets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalModel {
    /// How much faster than real time the producer reads the file. A
    /// transfer (not a live stream) drains the disk as fast as the queue
    /// admits; the calibration picks this so the queue stays stable under
    /// the heaviest policy.
    pub read_speedup: f64,
    /// Fraction of the (sped-up) GOP period occupied by the I-burst.
    pub i_burst_fraction: f64,
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel {
            read_speedup: 1.0,
            i_burst_fraction: 0.08,
        }
    }
}

impl ArrivalModel {
    /// Build the MMPP for a stream with the given packet statistics.
    ///
    /// `stats` supplies packets-per-frame for each class; `gop_size` and
    /// `fps` give the GOP period. Phase 1 covers the I-frame fragment train,
    /// phase 2 the remaining P-frame packets.
    pub fn mmpp(&self, stats: &PacketStats, gop_size: usize, fps: f64) -> Mmpp2 {
        assert!(gop_size >= 2, "GOP must contain at least one P frame");
        let gop_period_s = gop_size as f64 / fps / self.read_speedup;
        let dur1 = (self.i_burst_fraction * gop_period_s).max(1e-9);
        let dur2 = (gop_period_s - dur1).max(1e-9);
        let n_i = stats.mean_fragments_i; // packets in the I burst
        let n_p = stats.mean_fragments_p * (gop_size as f64 - 1.0);
        Mmpp2::new(1.0 / dur1, 1.0 / dur2, n_i / dur1, n_p / dur2)
    }
}

/// Everything the analytical framework needs for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Content motion level (drives decoder sensitivity and P sizes).
    pub motion: MotionLevel,
    /// GOP size (30 or 50 in the paper).
    pub gop_size: usize,
    /// Frames per second of the content.
    pub fps: f64,
    /// Device running the sender app.
    pub device: DeviceSpec,
    /// Packet statistics of the packetized stream.
    pub packet_stats: PacketStats,
    /// Arrival process of packets into the sender queue.
    pub mmpp: Mmpp2,
    /// Channel operating point (packet success rate, backoff rate).
    pub dcf: DcfSolution,
    /// PHY parameters for airtime arithmetic.
    pub phy: PhyParams,
    /// Relative std-dev applied to encryption and transmission times
    /// (the "minor variations" of eqs. 15–16).
    pub jitter_rel: f64,
    /// MAC retransmission limit used by the distortion path: a packet is
    /// delivered unless all `mac_retries + 1` attempts fail.
    pub mac_retries: u32,
    /// Measured encryption cost model (from calibration); when set it
    /// replaces the device-reference model for every algorithm.
    pub cost_override: Option<CostModel>,
}

/// Raw observations collected during an initial measurement window — the
/// paper's Section 6.1 calibration inputs: "The times of insertion of video
/// segments into the internal queue and their type are used to estimate
/// the 2-MMPP parameters … the sequence of times that are necessary for the
/// encryption of an initial set of packets … the client has access
/// locally to all the necessary information to compute these estimates."
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Queue-insertion times with frame-class labels (`true` = I packet).
    pub arrivals: Vec<(f64, bool)>,
    /// Observed `(bytes, seconds)` encryption timings for the cipher in use.
    pub encryption: Vec<CostSample>,
    /// MAC attempt outcomes: `(successes, attempts)`.
    pub attempt_success: (u64, u64),
    /// Observed mean single backoff wait after a collision, seconds.
    pub mean_backoff_s: f64,
}

impl ScenarioParams {
    /// Calibrate a scenario purely from field measurements (Figure 1's
    /// "minimal measurements" path): the MMPP from labelled insertion
    /// times, the encryption cost model from timing samples, and the
    /// channel operating point from attempt statistics. Device identity is
    /// still needed for figure labels and energy profiles; its reference
    /// cost model is *replaced* by the fitted one.
    ///
    /// Returns `None` when any estimator is unidentifiable (too few
    /// samples, one phase missing, single packet size, zero attempts).
    pub fn from_measurements(
        motion: MotionLevel,
        gop_size: usize,
        device: DeviceSpec,
        packet_stats: PacketStats,
        m: &Measurements,
    ) -> Option<Self> {
        let mmpp = Mmpp2::fit_labeled(&m.arrivals)?;
        let cost = CostModel::fit(&m.encryption)?;
        let (succ, attempts) = m.attempt_success;
        if attempts == 0 || m.mean_backoff_s <= 0.0 {
            return None;
        }
        let p_s = (succ as f64 / attempts as f64).clamp(1e-6, 1.0);
        let dcf = DcfSolution {
            tau: f64::NAN, // not observable from the sender alone
            collision_prob: 1.0 - p_s,
            packet_success_rate: p_s,
            mean_backoff_wait_s: m.mean_backoff_s,
            backoff_rate_hz: 1.0 / m.mean_backoff_s,
        };
        Some(ScenarioParams {
            motion,
            gop_size,
            fps: 30.0,
            device,
            packet_stats,
            mmpp,
            dcf,
            phy: PhyParams::g_54mbps(),
            jitter_rel: (cost.jitter_std_s / cost.mean_time(1000).max(1e-12)).clamp(0.01, 0.5),
            mac_retries: 1,
            cost_override: Some(cost),
        })
    }

    /// End-to-end packet delivery rate after MAC retransmissions — the
    /// decryption-rate baseline `p_d` of Section 4.3 (both the receiver and
    /// the eavesdropper overhear retransmitted copies).
    pub fn delivery_rate(&self) -> f64 {
        1.0 - (1.0 - self.dcf.packet_success_rate).powi(self.mac_retries as i32 + 1)
    }

    /// Per-cipher encryption cost model on this scenario's device, or the
    /// measured model when the scenario was calibrated from field samples.
    pub fn cost_model(&self, algorithm: Algorithm) -> CostModel {
        if let Some(measured) = self.cost_override {
            return measured;
        }
        let mut m = CostModel::reference(algorithm, self.device.clock_ghz);
        m.setup_s = self.device.segment_overhead_s;
        m
    }

    /// Mean encryption time of an I-frame packet (MTU-sized), seconds.
    pub fn enc_mean_i(&self, algorithm: Algorithm) -> f64 {
        self.cost_model(algorithm)
            .mean_time(self.packet_stats.mean_bytes_i.round() as usize)
    }

    /// Mean encryption time of a P-frame packet, seconds.
    pub fn enc_mean_p(&self, algorithm: Algorithm) -> f64 {
        self.cost_model(algorithm)
            .mean_time(self.packet_stats.mean_bytes_p.round() as usize)
    }

    /// Mean transmission time of an I-frame packet, seconds (eq. 16's μ_tI).
    pub fn tx_mean_i(&self) -> f64 {
        self.phy
            .tx_time_s(self.packet_stats.mean_bytes_i.round() as usize + 40)
    }

    /// Mean transmission time of a P-frame packet, seconds.
    pub fn tx_mean_p(&self) -> f64 {
        self.phy
            .tx_time_s(self.packet_stats.mean_bytes_p.round() as usize + 40)
    }

    /// Build a calibrated scenario for a (motion, GOP, device) triple.
    ///
    /// Encodes a reference 300-frame stream with the paper's size
    /// statistics, solves the DCF model for `stations` contenders, and
    /// paces the producer so the utilisation under the **heaviest** policy
    /// (3DES, encrypt-all) equals `target_rho_heaviest` — keeping every
    /// policy in the stable regime the 2-MMPP/G/1 analysis requires.
    pub fn calibrated(
        motion: MotionLevel,
        gop_size: usize,
        device: DeviceSpec,
        stations: usize,
        target_rho_heaviest: f64,
    ) -> Self {
        let dcf = DcfModel::new(stations, DEFAULT_CHANNEL_PER, PhyParams::g_54mbps()).solve();
        Self::calibrated_with_dcf(motion, gop_size, device, dcf, target_rho_heaviest)
    }

    /// [`calibrated`](Self::calibrated) with a pre-solved channel operating
    /// point — the hook a multi-flow engine uses to share one memoized
    /// [`DcfSolution`] across every flow contending on the same AP instead
    /// of re-running the fixed point per flow. Passing the solution of
    /// `DcfModel::new(stations, DEFAULT_CHANNEL_PER, PhyParams::g_54mbps())`
    /// reproduces `calibrated(…, stations, …)` bit for bit.
    pub fn calibrated_with_dcf(
        motion: MotionLevel,
        gop_size: usize,
        device: DeviceSpec,
        dcf: DcfSolution,
        target_rho_heaviest: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&target_rho_heaviest),
            "target utilisation must be below 1"
        );
        let mut rng = StdRng::seed_from_u64(0x5eed ^ gop_size as u64 ^ (motion as u64) << 8);
        let stream = StatisticalEncoder::new(motion, gop_size).encode(300, &mut rng);
        let packets = Packetizer::default().packetize(&stream);
        let packet_stats = PacketStats::measure(&packets).expect("stream has both classes");
        let phy = PhyParams::g_54mbps();

        // Heaviest per-packet service: 3DES on every packet + airtime + backoff.
        let mut proto = ScenarioParams {
            motion,
            gop_size,
            fps: 30.0,
            device,
            packet_stats,
            mmpp: Mmpp2::poisson(1.0), // placeholder until pacing is known
            dcf,
            phy,
            jitter_rel: 0.1,
            mac_retries: 1,
            cost_override: None,
        };
        let p_i = packet_stats.p_i;
        let heavy_service = p_i
            * (proto.enc_mean_i(Algorithm::TripleDes) + proto.tx_mean_i())
            + (1.0 - p_i) * (proto.enc_mean_p(Algorithm::TripleDes) + proto.tx_mean_p())
            + (1.0 - dcf.packet_success_rate) / dcf.packet_success_rate
                * dcf.mean_backoff_wait_s;
        let lambda_target = target_rho_heaviest / heavy_service;
        // Packets per real-time second at speedup 1.
        let pkts_per_gop = packet_stats.mean_fragments_i
            + packet_stats.mean_fragments_p * (gop_size as f64 - 1.0);
        let natural_rate = pkts_per_gop * 30.0 / gop_size as f64;
        let arrival = ArrivalModel {
            read_speedup: lambda_target / natural_rate,
            i_burst_fraction: 0.08,
        };
        proto.mmpp = arrival.mmpp(&packet_stats, gop_size, 30.0);
        proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_model_preserves_mean_rate() {
        let motion = MotionLevel::High;
        let mut rng = StdRng::seed_from_u64(1);
        let stream = StatisticalEncoder::new(motion, 30).encode(300, &mut rng);
        let stats = PacketStats::measure(&Packetizer::default().packetize(&stream)).unwrap();
        let arrival = ArrivalModel {
            read_speedup: 4.0,
            i_burst_fraction: 0.08,
        };
        let mmpp = arrival.mmpp(&stats, 30, 30.0);
        // Mean rate ≈ packets per GOP / (sped-up) GOP period.
        let pkts_per_gop = stats.mean_fragments_i + stats.mean_fragments_p * 29.0;
        let expected = pkts_per_gop / (30.0 / 30.0 / 4.0);
        assert!(
            (mmpp.mean_rate() - expected).abs() / expected < 0.05,
            "mmpp rate {} vs {}",
            mmpp.mean_rate(),
            expected
        );
        // Phase 1 must be the dense phase.
        assert!(mmpp.lambda1 > 2.0 * mmpp.lambda2);
    }

    #[test]
    fn calibrated_scenario_is_stable_for_heaviest_policy() {
        let s = ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, 5, 0.9);
        let p_i = s.packet_stats.p_i;
        let heavy = p_i * (s.enc_mean_i(Algorithm::TripleDes) + s.tx_mean_i())
            + (1.0 - p_i) * (s.enc_mean_p(Algorithm::TripleDes) + s.tx_mean_p())
            + (1.0 - s.dcf.packet_success_rate) / s.dcf.packet_success_rate
                * s.dcf.mean_backoff_wait_s;
        let rho = s.mmpp.mean_rate() * heavy;
        assert!((rho - 0.9).abs() < 0.02, "rho = {rho}");
    }

    #[test]
    fn faster_device_encrypts_faster() {
        let s2 = ScenarioParams::calibrated(MotionLevel::Low, 30, SAMSUNG_GALAXY_S2, 5, 0.9);
        let htc = ScenarioParams::calibrated(MotionLevel::Low, 30, HTC_AMAZE_4G, 5, 0.9);
        for alg in Algorithm::ALL {
            assert!(htc.enc_mean_i(alg) < s2.enc_mean_i(alg), "{alg}");
        }
    }

    #[test]
    fn cipher_costs_ordered() {
        let s = ScenarioParams::calibrated(MotionLevel::Low, 30, SAMSUNG_GALAXY_S2, 5, 0.9);
        assert!(s.enc_mean_i(Algorithm::Aes128) < s.enc_mean_i(Algorithm::Aes256));
        assert!(s.enc_mean_i(Algorithm::Aes256) < s.enc_mean_i(Algorithm::TripleDes));
        // I packets are bigger, so cost more to encrypt and transmit.
        assert!(s.enc_mean_i(Algorithm::Aes256) > s.enc_mean_p(Algorithm::Aes256));
        assert!(s.tx_mean_i() > s.tx_mean_p());
    }

    #[test]
    fn fast_motion_has_larger_p_share() {
        let slow = ScenarioParams::calibrated(MotionLevel::Low, 30, SAMSUNG_GALAXY_S2, 5, 0.9);
        let fast = ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, 5, 0.9);
        // Slow-motion P frames are single small packets, so I fragments make
        // up a larger share of the packet count than in fast motion, where
        // every P frame fragments too.
        assert!(slow.packet_stats.p_i > fast.packet_stats.p_i);
        assert!(fast.packet_stats.mean_bytes_p > slow.packet_stats.mean_bytes_p);
    }

    #[test]
    fn calibrated_with_dcf_reproduces_calibrated() {
        use thrifty_net::dcf::DcfModel;
        let direct = ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, 9, 0.92);
        let dcf = DcfModel::new(9, DEFAULT_CHANNEL_PER, PhyParams::g_54mbps()).solve();
        let injected =
            ScenarioParams::calibrated_with_dcf(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, dcf, 0.92);
        assert_eq!(direct.dcf, injected.dcf);
        assert_eq!(direct.mmpp, injected.mmpp);
        assert_eq!(direct.packet_stats, injected.packet_stats);
        assert_eq!(
            direct.mmpp.mean_rate().to_bits(),
            injected.mmpp.mean_rate().to_bits()
        );
    }

    #[test]
    fn device_constants_match_table1() {
        assert_eq!(SAMSUNG_GALAXY_S2.clock_ghz, 1.2);
        assert_eq!(HTC_AMAZE_4G.clock_ghz, 1.5);
        assert!(SAMSUNG_GALAXY_S2.name.contains("S-II"));
    }
}
