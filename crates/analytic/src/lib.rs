//! # thrifty-analytic
//!
//! The paper's analytical framework (Section 4): given an encryption policy,
//! wireless channel parameters, and the video content type, predict
//!
//! * the **per-packet delay** at the sender — by assembling the service-time
//!   mixture of eqs. (3)–(18) and solving the 2-MMPP/G/1 queue of
//!   Section 4.2.3 (via [`thrifty_queueing`]), and
//! * the **distortion at an eavesdropper** — frame success probabilities
//!   (eq. 20), intra-GOP distortion (eqs. 21–22), inter-GOP distortion with
//!   the motion-dependent distance polynomial of Figure 2 (fit by
//!   [`regression`]), the GOP state chain (eqs. 23–27), and the PSNR/MOS
//!   mappings (eq. 28).
//!
//! The module split mirrors the paper:
//!
//! * [`policy`] — encryption policies 𝒫 (cipher + packet-selection rule).
//! * [`params`] — scenario parameters estimated from minimal measurements
//!   (Fig. 1 "model calibration"): MMPP arrivals, encryption/transmission
//!   cost models, packet statistics, channel operating point.
//! * [`delay`] — Section 4.2: the service-time mixture and E\[W\].
//! * [`distortion`] — Section 4.3: frame success rate → expected distortion
//!   → PSNR → MOS, for both the legitimate receiver and the eavesdropper.
//! * [`regression`] — Section 4.3.2's degree-5 polynomial fit of distortion
//!   vs reference distance, per motion class (Figure 2).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! * [`fountain`] — the fountain transport's overhead-vs-loss term: the
//!   exact delivered-symbol distribution per channel (binomial / GE
//!   dynamic program) thresholded at a calibrated peeling margin, and the
//!   renewal-reward delay of spraying `k(1+ε)` symbols per block.

pub mod delay;
pub mod distortion;
pub mod fountain;
pub mod params;
pub mod policy;
pub mod regression;

pub use delay::{DelayModel, DelayPrediction};
pub use fountain::{FountainChannel, FountainDelayModel, DEFAULT_PEELING_MARGIN};
pub use distortion::{DistortionModel, DistortionPrediction, Observer};
pub use params::{ArrivalModel, Measurements, ScenarioParams};
pub use policy::{EncryptionMode, Policy};
pub use regression::{fit_polynomial, DistancePolynomial, SceneDistortion};
