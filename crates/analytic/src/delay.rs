//! The delay model of Section 4.2.
//!
//! For a policy 𝒫 the per-packet service time is the independent sum
//! `T = T_e^(𝒫) + T_b + T_t` (eq. 3):
//!
//! * `T_e^(𝒫)` — the encryption-time mixture of eq. (4), Gaussian variant
//!   of eqs. (15)/(17): with probability `q_I·p_I` the packet is an
//!   encrypted I fragment (mean `μ_eI`), with probability `q_P·(1−p_I)` an
//!   encrypted P packet (mean `μ_eP`), otherwise a zero atom.
//! * `T_b` — the geometric-exponential backoff of eqs. (6)–(7) with the
//!   channel's `(p_s, λ_b)`.
//! * `T_t` — the transmission-time mixture of eqs. (16)/(18).
//!
//! The resulting [`ServiceDistribution`] feeds the 2-MMPP/G/1 solver
//! (Section 4.2.3 / eq. 19) to produce the expected per-packet delay.

use crate::params::ScenarioParams;
use crate::policy::Policy;
use thrifty_queueing::service::{ServiceComponent, ServiceDistribution};
use thrifty_queueing::solver::{MmppG1, SolveError};
use thrifty_video::FrameType;

/// Predicted delay figures for one (scenario, policy) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPrediction {
    /// Mean queueing delay E\[W\] (eq. 19), seconds.
    pub mean_wait_s: f64,
    /// Mean total per-packet delay (wait + service), seconds — the quantity
    /// plotted in Figures 7–8.
    pub mean_delay_s: f64,
    /// Mean service time E\[T\], seconds.
    pub mean_service_s: f64,
    /// Mean encryption time E[T_e^(𝒫)], seconds.
    pub mean_encryption_s: f64,
    /// Utilisation ρ.
    pub rho: f64,
    /// Fraction of packets encrypted, `q^(𝒫)`.
    pub encrypted_fraction: f64,
}

/// Builds service-time distributions and solves the queue.
#[derive(Debug, Clone)]
pub struct DelayModel<'a> {
    params: &'a ScenarioParams,
}

impl<'a> DelayModel<'a> {
    /// Attach the model to a calibrated scenario.
    pub fn new(params: &'a ScenarioParams) -> Self {
        DelayModel { params }
    }

    /// The encryption-time component `T_e^(𝒫)` (eqs. 4, 15, 17).
    pub fn encryption_component(&self, policy: Policy) -> ServiceComponent {
        let p = self.params;
        let p_i = p.packet_stats.p_i;
        let q_i = policy.mode.encrypt_prob(FrameType::I);
        let q_p = policy.mode.encrypt_prob(FrameType::P);
        let mu_i = p.enc_mean_i(policy.algorithm);
        let mu_p = p.enc_mean_p(policy.algorithm);
        let w_i = q_i * p_i;
        let w_p = q_p * (1.0 - p_i);
        let w_zero = (1.0 - w_i - w_p).max(0.0);
        ServiceComponent::GaussianMixture(vec![
            (w_i, mu_i, p.jitter_rel * mu_i),
            (w_p, mu_p, p.jitter_rel * mu_p),
            (w_zero, 0.0, 0.0),
        ])
    }

    /// The backoff component `T_b` (eqs. 6–7).
    pub fn backoff_component(&self) -> ServiceComponent {
        ServiceComponent::GeometricExponential {
            success_prob: self.params.dcf.packet_success_rate,
            rate: self.params.dcf.backoff_rate_hz,
        }
    }

    /// The transmission component `T_t` (eqs. 8, 16, 18).
    pub fn transmission_component(&self) -> ServiceComponent {
        let p = self.params;
        let p_i = p.packet_stats.p_i;
        let mu_i = p.tx_mean_i();
        let mu_p = p.tx_mean_p();
        ServiceComponent::GaussianMixture(vec![
            (p_i, mu_i, p.jitter_rel * mu_i),
            (1.0 - p_i, mu_p, p.jitter_rel * mu_p),
        ])
    }

    /// The full service-time distribution `T` for a policy (eq. 3 / 10).
    pub fn service_distribution(&self, policy: Policy) -> ServiceDistribution {
        ServiceDistribution::from_parts(vec![
            self.encryption_component(policy),
            self.backoff_component(),
            self.transmission_component(),
        ])
    }

    /// Waiting-time percentiles for a policy (e.g. `&[0.5, 0.95, 0.99]`),
    /// via Euler inversion of the workload transform — the tail latencies
    /// the mean in Figures 7–8 hides.
    pub fn predict_percentiles(
        &self,
        policy: Policy,
        levels: &[f64],
    ) -> Result<Vec<f64>, SolveError> {
        let service = self.service_distribution(policy);
        let queue = MmppG1::new(self.params.mmpp, service.clone());
        let solution = queue.solve()?;
        let dist =
            thrifty_queueing::inversion::WaitDistribution::new(&self.params.mmpp, &service, &solution);
        Ok(levels
            .iter()
            .map(|&p| dist.quantile(p) + solution.h1) // wait + mean service
            .collect())
    }

    /// Predict the delay for a policy over HTTP/TCP (Section 6.4): the
    /// RTP/UDP prediction plus the expected per-segment retransmission
    /// latency of a TCP stack seeing the residual (post-MAC-retry) loss.
    pub fn predict_tcp(
        &self,
        policy: Policy,
        rto_s: f64,
    ) -> Result<DelayPrediction, SolveError> {
        let mut pred = self.predict(policy)?;
        let tcp_loss = 1.0 - self.params.delivery_rate();
        let extra = thrifty_net::tcp::TcpLatencyModel::new(tcp_loss, rto_s)
            .expected_extra_delay_s();
        pred.mean_delay_s += extra;
        pred.mean_service_s += extra;
        Ok(pred)
    }

    /// Predict the delay for a policy by solving the 2-MMPP/G/1 queue.
    pub fn predict(&self, policy: Policy) -> Result<DelayPrediction, SolveError> {
        let service = self.service_distribution(policy);
        let enc_mean = self.encryption_component(policy).mean();
        let queue = MmppG1::new(self.params.mmpp, service);
        let solution = queue.solve()?;
        Ok(DelayPrediction {
            mean_wait_s: solution.mean_wait_s,
            mean_delay_s: solution.mean_sojourn_s,
            mean_service_s: solution.h1,
            mean_encryption_s: enc_mean,
            rho: solution.rho,
            encrypted_fraction: policy.mode.encrypted_fraction(self.params.packet_stats.p_i),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ScenarioParams, HTC_AMAZE_4G, SAMSUNG_GALAXY_S2};
    use crate::policy::EncryptionMode;
    use thrifty_crypto::Algorithm;
    use thrifty_video::motion::MotionLevel;

    fn scenario(motion: MotionLevel, gop: usize) -> ScenarioParams {
        ScenarioParams::calibrated(motion, gop, SAMSUNG_GALAXY_S2, 5, 0.92)
    }

    fn policy(alg: Algorithm, mode: EncryptionMode) -> Policy {
        Policy::new(alg, mode)
    }

    #[test]
    fn all_policies_solve_and_are_stable() {
        for motion in [MotionLevel::Low, MotionLevel::High] {
            for gop in [30usize, 50] {
                let s = scenario(motion, gop);
                let model = DelayModel::new(&s);
                for p in Policy::all_table1() {
                    let pred = model.predict(p).unwrap_or_else(|e| {
                        panic!("{motion}/{gop}/{p}: {e}");
                    });
                    assert!(pred.rho < 1.0);
                    assert!(pred.mean_delay_s > 0.0);
                }
            }
        }
    }

    #[test]
    fn delay_ordering_matches_figure7() {
        // none < I < P ≤ all, for fast motion where P packets dominate.
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let d = |mode| {
            model
                .predict(policy(Algorithm::Aes256, mode))
                .unwrap_or_else(|e| panic!("AES-256/{mode} on fast/GOP-30 must be stable: {e}"))
                .mean_delay_s
        };
        let none = d(EncryptionMode::None);
        let i = d(EncryptionMode::IFrames);
        let p = d(EncryptionMode::PFrames);
        let all = d(EncryptionMode::All);
        assert!(none < i, "none {none} < I {i}");
        assert!(i < p, "I {i} < P {p}");
        assert!(p <= all, "P {p} <= all {all}");
    }

    #[test]
    fn i_only_delay_is_close_to_none() {
        // Paper: "the delay in the case where the I-frame packets are
        // selected for encryption is small and close to the delay when none
        // of the packets are encrypted".
        let s = scenario(MotionLevel::Low, 30);
        let model = DelayModel::new(&s);
        let none = model
            .predict(policy(Algorithm::Aes256, EncryptionMode::None))
            .expect("AES-256/none on slow/GOP-30 must be stable")
            .mean_delay_s;
        let i = model
            .predict(policy(Algorithm::Aes256, EncryptionMode::IFrames))
            .expect("AES-256/I on slow/GOP-30 must be stable")
            .mean_delay_s;
        let all = model
            .predict(policy(Algorithm::Aes256, EncryptionMode::All))
            .expect("AES-256/all on slow/GOP-30 must be stable")
            .mean_delay_s;
        assert!((i - none) < 0.35 * (all - none), "I≈none: {none} {i} {all}");
    }

    #[test]
    fn tdes_slower_than_aes() {
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        for mode in [EncryptionMode::All, EncryptionMode::PFrames] {
            let aes = model
                .predict(policy(Algorithm::Aes256, mode))
                .unwrap_or_else(|e| panic!("AES-256/{mode} on fast/GOP-30 must be stable: {e}"));
            let tdes = model
                .predict(policy(Algorithm::TripleDes, mode))
                .unwrap_or_else(|e| panic!("3DES/{mode} on fast/GOP-30 must be stable: {e}"));
            assert!(
                tdes.mean_delay_s > aes.mean_delay_s,
                "{mode}: 3DES {} vs AES {}",
                tdes.mean_delay_s,
                aes.mean_delay_s
            );
        }
    }

    #[test]
    fn htc_faster_than_samsung() {
        // Figure 8 vs Figure 7: the HTC's faster CPU yields lower delays
        // under encryption-heavy policies.
        let s2 = ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, 5, 0.92);
        let mut htc = ScenarioParams::calibrated(MotionLevel::High, 30, HTC_AMAZE_4G, 5, 0.92);
        // Compare at the same arrival pacing.
        htc.mmpp = s2.mmpp;
        let p = policy(Algorithm::TripleDes, EncryptionMode::All);
        let d_s2 = DelayModel::new(&s2)
            .predict(p)
            .expect("3DES/all on the Samsung must be stable")
            .mean_delay_s;
        let d_htc = DelayModel::new(&htc)
            .predict(p)
            .expect("3DES/all on the HTC must be stable")
            .mean_delay_s;
        assert!(d_htc < d_s2, "HTC {d_htc} vs S2 {d_s2}");
    }

    #[test]
    fn alpha_sweep_is_monotone() {
        // Figure 9a: delay grows with the fraction of P packets encrypted.
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let mut last = 0.0;
        for alpha in [0.0, 0.1, 0.2, 0.3, 0.5, 1.0] {
            let pred = model
                .predict(policy(
                    Algorithm::Aes256,
                    EncryptionMode::IPlusFractionP(alpha),
                ))
                .unwrap_or_else(|e| panic!("AES-256/I+{alpha}P on fast/GOP-30 must be stable: {e}"));
            assert!(
                pred.mean_delay_s >= last,
                "alpha {alpha}: {} after {last}",
                pred.mean_delay_s
            );
            last = pred.mean_delay_s;
        }
    }

    #[test]
    fn encryption_mean_matches_mixture_arithmetic() {
        let s = scenario(MotionLevel::Low, 30);
        let model = DelayModel::new(&s);
        let p = policy(Algorithm::Aes256, EncryptionMode::IFrames);
        let pred = model
            .predict(p)
            .expect("AES-256/I on slow/GOP-30 must be stable");
        let expected = s.packet_stats.p_i * s.enc_mean_i(Algorithm::Aes256);
        assert!((pred.mean_encryption_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn percentiles_are_ordered_and_above_the_mean_tail() {
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let p = policy(Algorithm::Aes256, EncryptionMode::IFrames);
        let mean = model
            .predict(p)
            .expect("AES-256/I on fast/GOP-30 must be stable")
            .mean_delay_s;
        let q = model
            .predict_percentiles(p, &[0.5, 0.95, 0.99])
            .expect("waiting-time inversion for AES-256/I must converge");
        assert!(q[0] < q[1] && q[1] < q[2], "{q:?}");
        // Right-skewed delay: median below mean, p95 above.
        assert!(q[0] < mean, "median {} < mean {mean}", q[0]);
        assert!(q[1] > mean, "p95 {} > mean {mean}", q[1]);
    }

    #[test]
    fn heavier_policies_have_heavier_tails() {
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let p95 = |mode| {
            model
                .predict_percentiles(policy(Algorithm::TripleDes, mode), &[0.95])
                .unwrap_or_else(|e| panic!("p95 inversion for 3DES/{mode} must converge: {e}"))[0]
        };
        assert!(p95(EncryptionMode::None) < p95(EncryptionMode::IFrames));
        assert!(p95(EncryptionMode::IFrames) < p95(EncryptionMode::All));
    }

    #[test]
    fn tcp_prediction_adds_retransmission_latency() {
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let p = policy(Algorithm::Aes256, EncryptionMode::IFrames);
        let udp = model
            .predict(p)
            .expect("AES-256/I over UDP must be stable")
            .mean_delay_s;
        let tcp = model
            .predict_tcp(p, 0.01)
            .expect("AES-256/I over TCP must be stable")
            .mean_delay_s;
        assert!(tcp > udp);
        // The ordering across modes is preserved under TCP.
        let tcp_all = model
            .predict_tcp(policy(Algorithm::Aes256, EncryptionMode::All), 0.01)
            .expect("AES-256/all over TCP must be stable")
            .mean_delay_s;
        assert!(tcp_all > tcp);
    }

    #[test]
    fn encrypted_fraction_reported() {
        let s = scenario(MotionLevel::High, 30);
        let model = DelayModel::new(&s);
        let pred = model
            .predict(policy(Algorithm::Aes128, EncryptionMode::All))
            .expect("AES-128/all on fast/GOP-30 must be stable");
        assert_eq!(pred.encrypted_fraction, 1.0);
        let pred = model
            .predict(policy(Algorithm::Aes128, EncryptionMode::None))
            .expect("AES-128/none on fast/GOP-30 must be stable");
        assert_eq!(pred.encrypted_fraction, 0.0);
    }
}
