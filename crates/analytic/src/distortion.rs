//! The distortion model of Section 4.3.
//!
//! Pipeline: per-class packet **decryption rates** (receiver: the channel
//! delivery rate; eavesdropper: `(1 − q_class) ·` delivery rate) → **frame
//! success probabilities** (eq. 20, with the motion-dependent decoder
//! sensitivity `s`) → expected **distortion** through the GOP state chain of
//! eqs. (23)–(27), using the Figure 2 distance measurement
//! ([`SceneDistortion`]) for intra-GOP (Case 1) and inter-GOP (Case 2)
//! reference substitution, and the measured black-screen distortion for the
//! never-received Case 3 → **PSNR** (eq. 28) and a MOS estimate.
//!
//! The chain over GOP states is evaluated exactly by dynamic programming on
//! the *reference staleness* at each GOP boundary (the distance, in frames,
//! from a GOP's first frame back to the last correctly decoded frame, or
//! "never received anything"). This is a tractable, faithful evaluation of
//! the expectation in eqs. (25)–(27): the per-GOP distortion depends on
//! previous GOPs only through that staleness.

use crate::params::ScenarioParams;
use crate::policy::Policy;
use crate::regression::SceneDistortion;
use thrifty_video::quality::mos_class;
use thrifty_video::yuv::psnr_from_mse;
use thrifty_video::FrameType;

/// Who is reconstructing the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observer {
    /// The legitimate receiver: decrypts everything it receives.
    Receiver,
    /// The eavesdropper: encrypted packets are erasures (Section 4.3).
    Eavesdropper,
}

/// Predicted quality figures for one (scenario, policy, observer) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionPrediction {
    /// Expected mean-square error over the displayed frames.
    pub expected_mse: f64,
    /// PSNR of the expected distortion (eq. 28), dB — Figures 4/14.
    pub psnr_db: f64,
    /// Estimated Mean Opinion Score (1–5) — Figures 5/15.
    pub mos: f64,
    /// Frame success probability of I-frames (eq. 20).
    pub frame_success_i: f64,
    /// Frame success probability of P-frames.
    pub frame_success_p: f64,
    /// Fraction of displayed frames that are live (not concealed).
    pub live_fraction: f64,
}

/// The distortion model: scenario + measured distance-distortion curve.
#[derive(Debug, Clone)]
pub struct DistortionModel<'a> {
    params: &'a ScenarioParams,
    scene: &'a SceneDistortion,
    /// Number of GOPs evaluated by the state chain (the paper's N).
    pub gops: usize,
    /// Staleness cap, frames (distortion saturates well before; the cap
    /// only bounds the DP state space).
    pub max_staleness: usize,
    /// Override of the P-frame intra-refresh fraction (ablation hook);
    /// `None` uses the motion class default. Setting `Some(0.0)` recovers
    /// the paper's pure frame-copy concealment model.
    pub refresh_override: Option<f64>,
}

impl<'a> DistortionModel<'a> {
    /// Build a model for a scenario and its motion class's Figure 2
    /// measurement.
    pub fn new(params: &'a ScenarioParams, scene: &'a SceneDistortion) -> Self {
        DistortionModel {
            params,
            scene,
            gops: 10,
            max_staleness: 240,
            refresh_override: None,
        }
    }

    /// Per-class packet decryption rate `p_d` for an observer (Section 4.3).
    ///
    /// Both observers overhear the same channel (with MAC retransmissions,
    /// [`ScenarioParams::delivery_rate`]); the eavesdropper additionally
    /// loses every encrypted packet.
    pub fn decrypt_rate(&self, policy: Policy, observer: Observer, ftype: FrameType) -> f64 {
        let p_d = self.params.delivery_rate();
        match observer {
            Observer::Receiver => p_d,
            Observer::Eavesdropper => (1.0 - policy.mode.encrypt_prob(ftype)) * p_d,
        }
    }

    /// Frame success probability, eq. (20): the first packet must arrive
    /// and decrypt, plus at least `s` of the remaining `n − 1`.
    pub fn frame_success(&self, n_packets: f64, sensitivity_frac: f64, p_d: f64) -> f64 {
        let n = n_packets.round().max(1.0) as usize;
        if p_d <= 0.0 {
            return 0.0;
        }
        if n == 1 {
            return p_d;
        }
        let s = (sensitivity_frac * (n - 1) as f64).ceil() as usize;
        let s = s.min(n - 1);
        let mut tail = 0.0;
        for j in s..n {
            tail += binomial(n - 1, j) * p_d.powi(j as i32) * (1.0 - p_d).powi((n - 1 - j) as i32);
        }
        p_d * tail
    }

    /// Frame success probabilities (P_I, P_P) for a policy and observer.
    pub fn frame_success_rates(&self, policy: Policy, observer: Observer) -> (f64, f64) {
        let sens = self.params.motion.sensitivity_fraction();
        let stats = &self.params.packet_stats;
        let p_i = self.frame_success(
            stats.mean_fragments_i,
            sens,
            self.decrypt_rate(policy, observer, FrameType::I),
        );
        let p_p = self.frame_success(
            stats.mean_fragments_p,
            sens,
            self.decrypt_rate(policy, observer, FrameType::P),
        );
        (p_i, p_p)
    }

    /// Evaluate the GOP state chain (eqs. 23–27) and map to PSNR/MOS.
    ///
    /// The DP state is the **display MSE** carried across GOP boundaries.
    /// Case 1 (I received, first P loss at k) freezes the rest of the GOP
    /// on the last decoded frame, with the Figure 2 distance curve giving
    /// the cost. Case 2/3 (I unrecoverable) evolves the display by the
    /// per-frame recurrence `M ← (1 − r·P_P)·M + drift`, where `drift` is
    /// the measured adjacent-frame MSE (content moving on) and `r` is the
    /// motion class's P-frame intra-refresh fraction — decoded P-frames
    /// progressively repaint the picture even without their reference,
    /// which is why fast-motion content stays partly viewable under the
    /// I-only policy (the paper's Table 2 MOS of 1.71) while slow-motion
    /// content stays black.
    pub fn predict(&self, policy: Policy, observer: Observer) -> DistortionPrediction {
        let (ps_i, ps_p) = self.frame_success_rates(policy, observer);
        let g = self.params.gop_size;
        let d = |dist: usize| self.scene.distance_mse(dist as f64);

        // Per-frame evolution without a decodable I reference.
        let drift = self.scene.distance_mse(1.0).max(1e-6);
        let refresh = self
            .refresh_override
            .unwrap_or_else(|| self.params.motion.p_refresh_fraction());
        let decay = 1.0 - refresh * ps_p;
        let cap = self.scene.black_mse.max(drift * 2.0);

        // Log-spaced MSE buckets for the cross-GOP display state.
        const NB: usize = 96;
        let m_min = (drift * 0.25).max(1e-4);
        let span = (cap / m_min).ln();
        let bucket_of = |m: f64| -> usize {
            if m <= m_min {
                0
            } else {
                ((((m / m_min).ln() / span) * (NB - 1) as f64).round() as usize).min(NB - 1)
            }
        };
        let value_of = |b: usize| m_min * ((b as f64 / (NB - 1) as f64) * span).exp();

        let mut state = vec![0.0f64; NB];
        state[NB - 1] = 1.0; // before the first GOP the display is black

        // Probability of first-loss state k (eq. 24).
        let mut p_state = vec![0.0; g + 1];
        p_state[0] = 1.0 - ps_i;
        for (k, slot) in p_state.iter_mut().enumerate().take(g).skip(1) {
            *slot = ps_i * ps_p.powi(k as i32 - 1) * (1.0 - ps_p);
        }
        p_state[g] = ps_i * ps_p.powi(g as i32 - 1);

        let mut total_mse = 0.0;
        let mut total_mos = 0.0;
        let mut total_live = 0.0;
        let frames_total = (self.gops * g) as f64;
        let class_of = |mse: f64| mos_class(psnr_from_mse(mse)) as f64;

        // Case-1 costs are state-independent: precompute their frame sums.
        // k = G: all live. k ∈ 1..G: k live + frozen tail from a live ref.
        let mut frozen_mse = vec![0.0; g + 1];
        let mut frozen_mos = vec![0.0; g + 1];
        for k in 1..g {
            for j in k..g {
                let mse = d(j - (k - 1));
                frozen_mse[k] += mse;
                frozen_mos[k] += class_of(mse);
            }
        }

        for _ in 0..self.gops {
            let mut next = vec![0.0f64; NB];
            // State-independent branches first (aggregate probability 1·p).
            let mass: f64 = state.iter().sum();
            {
                let p = mass * p_state[g];
                total_live += p * g as f64;
                total_mos += p * g as f64 * 5.0;
                next[bucket_of(d(1))] += p;
            }
            for k in 1..g {
                let p = mass * p_state[k];
                if p > 0.0 {
                    total_live += p * k as f64;
                    total_mos += p * (k as f64 * 5.0 + frozen_mos[k]);
                    total_mse += p * frozen_mse[k];
                    next[bucket_of(d(g - k + 1))] += p;
                }
            }
            // Case 2/3: I lost — evolve the carried display MSE.
            if p_state[0] > 0.0 {
                for (b, &prob) in state.iter().enumerate() {
                    // lint:allow(num-float-eq): exact-zero skip of empty probability buckets; any nonzero mass must be processed
                    if prob == 0.0 {
                        continue;
                    }
                    let p = prob * p_state[0];
                    let mut m = value_of(b);
                    for _ in 0..g {
                        m = (decay * m + drift).min(cap);
                        total_mse += p * m;
                        total_mos += p * class_of(m);
                    }
                    next[bucket_of(m)] += p;
                }
            }
            state = next;
        }

        let expected_mse = total_mse / frames_total;
        DistortionPrediction {
            expected_mse,
            psnr_db: psnr_from_mse(expected_mse),
            mos: total_mos / frames_total,
            frame_success_i: ps_i,
            frame_success_p: ps_p,
            live_fraction: total_live / frames_total,
        }
    }

    /// The literal intra-GOP expectation of eqs. (21)–(22) (Case 1 alone):
    /// distortion when the GOP's I-frame is received and the first P loss is
    /// at position i, linearly interpolated between `d_max` (first P lost)
    /// and `d_min` (last P lost), weighted by the loss-position law.
    ///
    /// Exposed for the ablation comparing the paper's closed form against
    /// the measured-curve chain evaluation in [`predict`](Self::predict).
    pub fn intra_gop_distortion_eq21(&self, policy: Policy, observer: Observer) -> f64 {
        let (ps_i, ps_p) = self.frame_success_rates(policy, observer);
        let g = self.params.gop_size as f64;
        let d_min = self.scene.distance_mse(1.0);
        let d_max = self.scene.distance_mse(g - 1.0);
        let mut acc = 0.0;
        for i in 1..self.params.gop_size {
            let fi = i as f64;
            // Fraction of the GOP frozen: (G − i)/G, at a severity that
            // interpolates between d_max (i = 1) and d_min (i = G − 1).
            let severity = if g > 2.0 {
                (d_max * (g - 1.0 - fi) + d_min * (fi - 1.0)) / (g - 2.0)
            } else {
                d_max
            };
            let d_i = (g - fi) / g * severity;
            let p_i_loss = ps_i * ps_p.powi(i as i32 - 1) * (1.0 - ps_p);
            acc += d_i * p_i_loss;
        }
        acc
    }
}

/// Binomial coefficient as f64 (n ≤ ~30 in practice).
fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ScenarioParams, SAMSUNG_GALAXY_S2};
    use crate::policy::{EncryptionMode, Policy};
    use thrifty_crypto::Algorithm;
    use thrifty_video::motion::MotionLevel;

    fn setup(motion: MotionLevel, gop: usize) -> (ScenarioParams, SceneDistortion) {
        let params = ScenarioParams::calibrated(motion, gop, SAMSUNG_GALAXY_S2, 5, 0.9);
        // QCIF-scale measurement keeps tests fast; distances to 12 frames.
        let scene = SceneDistortion::measure(motion, 40, 12, 7);
        (params, scene)
    }

    fn policy(mode: EncryptionMode) -> Policy {
        Policy::new(Algorithm::Aes256, mode)
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 4), 0.0);
    }

    #[test]
    fn frame_success_sanity() {
        let (params, scene) = setup(MotionLevel::Low, 30);
        let m = DistortionModel::new(&params, &scene);
        assert!((m.frame_success(1.0, 0.5, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.frame_success(5.0, 0.5, 0.0), 0.0);
        let few = m.frame_success(2.0, 0.9, 0.9);
        let many = m.frame_success(11.0, 0.9, 0.9);
        assert!(many < few, "more packets, lower success");
        let lax = m.frame_success(11.0, 0.5, 0.9);
        let strict = m.frame_success(11.0, 0.95, 0.9);
        assert!(strict < lax, "higher sensitivity, lower success");
    }

    #[test]
    fn receiver_beats_eavesdropper_under_encryption() {
        let (params, scene) = setup(MotionLevel::Low, 30);
        let m = DistortionModel::new(&params, &scene);
        let rx = m.predict(policy(EncryptionMode::All), Observer::Receiver);
        let eve = m.predict(policy(EncryptionMode::All), Observer::Eavesdropper);
        assert!(
            rx.psnr_db > eve.psnr_db + 10.0,
            "rx {} eve {}",
            rx.psnr_db,
            eve.psnr_db
        );
        assert!(eve.live_fraction < 0.01);
        assert!(rx.live_fraction > 0.3);
        // Receiver quality is independent of the encryption mode.
        let rx_none = m.predict(policy(EncryptionMode::None), Observer::Receiver);
        assert!((rx.psnr_db - rx_none.psnr_db).abs() < 1e-9);
    }

    #[test]
    fn i_encryption_destroys_slow_motion_for_eavesdropper() {
        // Figure 4a/4c: for slow motion, encrypting I alone drops PSNR near
        // the encrypt-all floor, and below the P-only policy.
        let (params, scene) = setup(MotionLevel::Low, 30);
        let m = DistortionModel::new(&params, &scene);
        let none = m.predict(policy(EncryptionMode::None), Observer::Eavesdropper);
        let i = m.predict(policy(EncryptionMode::IFrames), Observer::Eavesdropper);
        let p = m.predict(policy(EncryptionMode::PFrames), Observer::Eavesdropper);
        let all = m.predict(policy(EncryptionMode::All), Observer::Eavesdropper);
        assert!(i.psnr_db < none.psnr_db - 5.0, "I policy must hurt: {i:?}");
        assert!(i.psnr_db < p.psnr_db, "slow: I hurts more than P");
        assert!(
            all.psnr_db <= i.psnr_db + 2.0,
            "I ≈ all for slow motion: I {} all {}",
            i.psnr_db,
            all.psnr_db
        );
        assert!(none.psnr_db > p.psnr_db, "P encryption still degrades");
    }

    #[test]
    fn p_encryption_hurts_fast_motion_more_than_slow() {
        // Figure 4b/4d: the P policy costs fast-motion eavesdroppers more
        // PSNR (relative to their own unencrypted baseline) than slow.
        let (slow_params, slow_scene) = setup(MotionLevel::Low, 30);
        let (fast_params, fast_scene) = setup(MotionLevel::High, 30);
        let slow = DistortionModel::new(&slow_params, &slow_scene);
        let fast = DistortionModel::new(&fast_params, &fast_scene);
        let drop = |m: &DistortionModel, mode| {
            let base = m.predict(policy(EncryptionMode::None), Observer::Eavesdropper);
            let it = m.predict(policy(mode), Observer::Eavesdropper);
            (base.psnr_db - it.psnr_db) / base.psnr_db
        };
        let slow_p_drop = drop(&slow, EncryptionMode::PFrames);
        let fast_p_drop = drop(&fast, EncryptionMode::PFrames);
        assert!(
            fast_p_drop > slow_p_drop,
            "P-encryption drop: fast {fast_p_drop} vs slow {slow_p_drop}"
        );
        let slow_i_drop = drop(&slow, EncryptionMode::IFrames);
        let fast_i_drop = drop(&fast, EncryptionMode::IFrames);
        assert!(
            slow_i_drop > fast_i_drop,
            "I-encryption drop: slow {slow_i_drop} vs fast {fast_i_drop}"
        );
    }

    #[test]
    fn alpha_sweep_monotonically_degrades_eavesdropper() {
        // Table 2: adding P fractions on top of I keeps lowering PSNR.
        let (params, scene) = setup(MotionLevel::High, 30);
        let m = DistortionModel::new(&params, &scene);
        let mut last_psnr = f64::INFINITY;
        for alpha in [0.0, 0.1, 0.2, 0.3, 0.5] {
            let pred = m.predict(
                policy(EncryptionMode::IPlusFractionP(alpha)),
                Observer::Eavesdropper,
            );
            assert!(
                pred.psnr_db <= last_psnr + 1e-9,
                "alpha {alpha}: {} after {last_psnr}",
                pred.psnr_db
            );
            last_psnr = pred.psnr_db;
        }
    }

    #[test]
    fn mos_tracks_psnr() {
        let (params, scene) = setup(MotionLevel::High, 30);
        let m = DistortionModel::new(&params, &scene);
        let none = m.predict(policy(EncryptionMode::None), Observer::Eavesdropper);
        let all = m.predict(policy(EncryptionMode::All), Observer::Eavesdropper);
        assert!(none.mos > all.mos);
        assert!((1.0..=5.0).contains(&none.mos));
        assert!((1.0..=5.0).contains(&all.mos));
        // Fully encrypted stream is unviewable: MOS pinned near 1.
        assert!(all.mos < 1.2, "all-encrypted MOS = {}", all.mos);
    }

    #[test]
    fn intra_gop_closed_form_is_positive_and_bounded() {
        let (params, scene) = setup(MotionLevel::Medium, 30);
        let m = DistortionModel::new(&params, &scene);
        let v = m.intra_gop_distortion_eq21(policy(EncryptionMode::None), Observer::Eavesdropper);
        assert!(v >= 0.0);
        assert!(v <= scene.distance_mse(29.0) + 1e-9);
    }

    #[test]
    fn gop50_freezes_at_least_as_much_as_gop30() {
        let (params30, scene) = setup(MotionLevel::High, 30);
        let (params50, _) = setup(MotionLevel::High, 50);
        let m30 = DistortionModel::new(&params30, &scene);
        let m50 = DistortionModel::new(&params50, &scene);
        let e30 = m30.predict(policy(EncryptionMode::IFrames), Observer::Eavesdropper);
        let e50 = m50.predict(policy(EncryptionMode::IFrames), Observer::Eavesdropper);
        assert!(e50.live_fraction <= e30.live_fraction + 1e-9);
    }
}
