//! Polynomial regression of distortion vs reference distance (Figure 2).
//!
//! Section 4.3.2: "we approximate the observed curves with polynomials of
//! degree 5 using a multinomial regression … D(d) = Σᵢ aᵢ dⁱ". The observed
//! curves come from [`thrifty_video::quality::distortion_vs_distance`] on
//! our synthetic clips; the least-squares fit is solved with the normal
//! equations on the small Vandermonde system.

use thrifty_queueing::matrix::Matrix;
use thrifty_video::motion::MotionLevel;
use thrifty_video::quality::distortion_vs_distance;
use thrifty_video::scene::{SceneConfig, SceneGenerator};

/// A fitted distortion-vs-distance polynomial `D(d) = Σ aᵢ dⁱ`.
///
/// Evaluation saturates beyond the largest fitted distance: polynomial
/// extrapolation diverges, while physical distortion plateaus once the
/// reference frame shares nothing with the shown one.
#[derive(Debug, Clone, PartialEq)]
pub struct DistancePolynomial {
    /// Coefficients a₀..a_degree.
    pub coefficients: Vec<f64>,
    /// Largest distance used in the fit; evaluation clamps here.
    pub max_distance: f64,
}

impl DistancePolynomial {
    /// Evaluate `D(d)`, clamped to the fitted range and floored at zero.
    pub fn eval(&self, distance: f64) -> f64 {
        let d = distance.clamp(0.0, self.max_distance);
        let mut acc = 0.0;
        let mut pow = 1.0;
        for &a in &self.coefficients {
            acc += a * pow;
            pow *= d;
        }
        acc.max(0.0)
    }

    /// Degree of the polynomial.
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }
}

/// Least-squares fit of a degree-`degree` polynomial through
/// `(x, y)` points via the normal equations.
///
/// # Panics
/// If fewer than `degree + 1` points are supplied or lengths mismatch.
pub fn fit_polynomial(xs: &[f64], ys: &[f64], degree: usize) -> DistancePolynomial {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(
        xs.len() > degree,
        "need more points than the polynomial degree"
    );
    let n = degree + 1;
    // Normal equations: (VᵀV) a = Vᵀy with V the Vandermonde matrix.
    let mut vtv = Matrix::zeros(n, n);
    let mut vty = vec![0.0; n];
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let mut powers = vec![1.0; n];
        for i in 1..n {
            powers[i] = powers[i - 1] * x;
        }
        for i in 0..n {
            vty[i] += powers[i] * y;
            for j in 0..n {
                vtv[(i, j)] += powers[i] * powers[j];
            }
        }
    }
    let coefficients = vtv
        .solve(&vty)
        .expect("normal equations are solvable for distinct distances");
    let max_distance = xs.iter().fold(0.0f64, |m, &x| m.max(x));
    DistancePolynomial {
        coefficients,
        max_distance,
    }
}

/// Reproduce the Figure 2 measurement for one motion class and fit the
/// degree-5 polynomial the framework consumes.
///
/// Generates a `frames`-frame synthetic clip of the requested motion level,
/// measures mean MSE at reference distances `1..=max_distance`, and fits.
/// The paper fits over distances up to 4 on 300-frame CIF clips; callers may
/// extend the distance range so inter-GOP staleness stays inside the fitted
/// (rather than extrapolated) region.
pub fn fit_from_scene(
    motion: MotionLevel,
    frames: usize,
    max_distance: usize,
    seed: u64,
) -> DistancePolynomial {
    let generator = SceneGenerator::new(SceneConfig::new(motion, seed));
    let clip = generator.clip(frames);
    let mse = distortion_vs_distance(&clip, max_distance);
    let xs: Vec<f64> = (1..=max_distance).map(|d| d as f64).collect();
    let degree = 5.min(max_distance - 1).max(1);
    fit_polynomial(&xs, &mse, degree)
}

/// Everything the distortion model needs to turn a reference distance into
/// an MSE, measured from one motion class's content.
///
/// Beyond the fitted distances the polynomial would extrapolate wildly,
/// while physical distortion saturates; and a decoder that never received
/// *any* frame (paper Case 3, "the distortion is maximized") shows black.
/// Both asymptotes are therefore **measured** from the clip rather than
/// extrapolated.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneDistortion {
    /// The Figure 2 degree-5 fit over small distances.
    pub polynomial: DistancePolynomial,
    /// Mean MSE between frames far enough apart to be decorrelated — the
    /// saturation level for large staleness.
    pub far_mse: f64,
    /// Mean MSE between a frame and a black screen — Case 3 distortion.
    pub black_mse: f64,
    /// e-folding scale (frames) of the approach from the fitted range to
    /// `far_mse`.
    pub decorrelation_frames: f64,
}

impl SceneDistortion {
    /// Measure a motion class: fit the polynomial over `1..=max_distance`
    /// and measure the two saturation levels on the same clip.
    pub fn measure(motion: MotionLevel, frames: usize, max_distance: usize, seed: u64) -> Self {
        assert!(
            frames > 2 * max_distance + 10,
            "clip too short to measure saturation"
        );
        let generator = SceneGenerator::new(SceneConfig::new(motion, seed));
        let clip = generator.clip(frames);
        let mse = distortion_vs_distance(&clip, max_distance);
        let xs: Vec<f64> = (1..=max_distance).map(|d| d as f64).collect();
        let degree = 5.min(max_distance - 1).max(1);
        let polynomial = fit_polynomial(&xs, &mse, degree);
        // Far MSE: compare frames a large, fixed stride apart.
        let stride = frames - max_distance - 1;
        let mut far_acc = 0.0;
        let mut far_n = 0usize;
        for i in stride..frames {
            far_acc += clip[i].mse(&clip[i - stride]);
            far_n += 1;
        }
        let far_mse = (far_acc / far_n as f64).max(polynomial.eval(max_distance as f64));
        // Black MSE: what a never-fed decoder displays.
        let black = thrifty_video::yuv::YuvFrame::black(clip[0].resolution);
        let black_mse =
            clip.iter().map(|f| f.mse(&black)).sum::<f64>() / clip.len() as f64;
        SceneDistortion {
            polynomial,
            far_mse,
            black_mse,
            decorrelation_frames: 30.0,
        }
    }

    /// MSE of showing a reference `distance` frames stale: the Figure 2
    /// polynomial inside the fitted range, saturating exponentially toward
    /// [`far_mse`](Self::far_mse) beyond it.
    pub fn distance_mse(&self, distance: f64) -> f64 {
        let d_max = self.polynomial.max_distance;
        if distance <= d_max {
            return self.polynomial.eval(distance);
        }
        let edge = self.polynomial.eval(d_max);
        let gap = (self.far_mse - edge).max(0.0);
        edge + gap * (1.0 - (-(distance - d_max) / self.decorrelation_frames).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_polynomial() {
        // y = 2 + 3x − x²
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x - x * x).collect();
        let p = fit_polynomial(&xs, &ys, 2);
        assert!((p.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((p.coefficients[1] - 3.0).abs() < 1e-8);
        assert!((p.coefficients[2] + 1.0).abs() < 1e-8);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn degree_five_interpolates_six_points() {
        let xs: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let ys = vec![5.0, 9.0, 10.0, 14.0, 14.5, 16.0];
        let p = fit_polynomial(&xs, &ys, 5);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            assert!((p.eval(x) - y).abs() < 1e-6, "interpolation at {x}");
        }
    }

    #[test]
    fn eval_clamps_beyond_fit_range() {
        let xs: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * 10.0).collect();
        let p = fit_polynomial(&xs, &ys, 2);
        assert!((p.eval(100.0) - p.eval(6.0)).abs() < 1e-9);
        assert!(p.eval(-5.0) >= 0.0);
    }

    #[test]
    fn scene_fit_orders_by_motion() {
        // Mirrors Figure 2: at every distance, higher motion ⇒ more distortion.
        let low = fit_from_scene(MotionLevel::Low, 30, 4, 3);
        let medium = fit_from_scene(MotionLevel::Medium, 30, 4, 3);
        let high = fit_from_scene(MotionLevel::High, 30, 4, 3);
        for d in 1..=4 {
            let d = d as f64;
            assert!(
                low.eval(d) < medium.eval(d) && medium.eval(d) < high.eval(d),
                "ordering at distance {d}: {} {} {}",
                low.eval(d),
                medium.eval(d),
                high.eval(d)
            );
        }
    }

    #[test]
    fn scene_fit_grows_with_distance() {
        let p = fit_from_scene(MotionLevel::High, 30, 6, 4);
        let mut last = 0.0;
        for d in 1..=6 {
            let v = p.eval(d as f64);
            assert!(v >= last * 0.85, "distortion should broadly grow: {v} after {last}");
            last = v;
        }
        assert!(p.eval(6.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "need more points")]
    fn underdetermined_fit_panics() {
        fit_polynomial(&[1.0, 2.0], &[1.0, 2.0], 5);
    }

    #[test]
    fn scene_distortion_asymptotes_are_ordered() {
        for motion in [MotionLevel::Low, MotionLevel::High] {
            let sd = SceneDistortion::measure(motion, 60, 12, 9);
            // Near distortion < far distortion < black screen.
            assert!(sd.polynomial.eval(1.0) < sd.far_mse, "{motion}");
            assert!(sd.far_mse < sd.black_mse, "{motion}: far {} black {}", sd.far_mse, sd.black_mse);
            // Saturation is monotone and approaches far_mse.
            let a = sd.distance_mse(12.0);
            let b = sd.distance_mse(40.0);
            let c = sd.distance_mse(400.0);
            assert!(a <= b + 1e-9 && b <= c + 1e-9);
            assert!((c - sd.far_mse).abs() / sd.far_mse < 0.01);
        }
    }

    #[test]
    fn scene_distortion_continuous_at_fit_edge() {
        let sd = SceneDistortion::measure(MotionLevel::Medium, 60, 10, 2);
        let inside = sd.distance_mse(10.0);
        let outside = sd.distance_mse(10.0 + 1e-6);
        assert!((inside - outside).abs() < 1e-3 * inside.max(1.0));
    }

    #[test]
    fn black_screen_is_catastrophic() {
        let sd = SceneDistortion::measure(MotionLevel::Low, 60, 8, 5);
        // Black-screen PSNR lands near the paper's ~10 dB floor.
        let psnr = thrifty_video::yuv::psnr_from_mse(sd.black_mse);
        assert!(psnr < 15.0, "black PSNR {psnr}");
    }
}
