//! Overhead-vs-loss term for the fountain transport scenario.
//!
//! A rateless sender spends a fixed overhead ε — it emits `n = k + ⌈k·ε⌉`
//! coded symbols per `k`-symbol block — and in exchange never retransmits.
//! The question the analytic layer must answer is where that trade wins:
//! given the channel's loss process, what is the probability the receiver
//! fails to decode, and what does a delivered block cost in delay?
//!
//! Both questions reduce to the distribution of `R`, the number of symbols
//! delivered out of `n` sent. This module computes that distribution
//! **exactly** — a binomial for i.i.d. loss, and a dynamic program over
//! (Gilbert–Elliott state × delivered count) for bursty loss, started from
//! the stationary state distribution — and thresholds it with a calibrated
//! peeling margin:
//!
//! The systematic LT code decodes when the received symbols cover the
//! source through peeling. With `ℓ` systematic symbols lost, the peeler
//! must recover `ℓ` sources from the received repair symbols, which costs
//! a margin `m` of extra repair beyond `ℓ` (robust-soliton ripple slack).
//! Under symbol-exchangeable loss `ℓ ≈ (k/n)(n−R)`, giving the decode
//! threshold `R* = k·n·(1+m) / (n + m·k)` — exactly `k` when `n = k`
//! (pure systematic: every symbol must arrive) and `k(1+m)` as `n → ∞`
//! (the classic LT overhead). [`DEFAULT_PEELING_MARGIN`] is calibrated
//! against the simulator in the workspace differential tests.

/// Peeling margin `m` calibrated against `thrifty-sim`'s fountain path:
/// the repair slack (fraction of the lost-source count) the belief-
/// propagation peeler needs beyond erasure-counting to keep its ripple
/// alive at the block sizes the pipeline uses (k ≈ 10–60).
pub const DEFAULT_PEELING_MARGIN: f64 = 0.35;

/// The per-symbol delivery process the fountain stream rides on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FountainChannel {
    /// Independent per-symbol delivery with probability `1 − loss`.
    Iid {
        /// Per-symbol loss probability.
        loss: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss (the PR 3 fault matrix's
    /// burst channel), started in the stationary state mix.
    Burst {
        /// P(good → bad) per symbol.
        p_gb: f64,
        /// P(bad → good) per symbol.
        p_bg: f64,
        /// Delivery probability in the Good state.
        good_success: f64,
        /// Delivery probability in the Bad state.
        bad_success: f64,
    },
}

impl FountainChannel {
    /// Long-run per-symbol delivery probability.
    pub fn success_rate(&self) -> f64 {
        match *self {
            FountainChannel::Iid { loss } => 1.0 - loss,
            FountainChannel::Burst {
                p_gb,
                p_bg,
                good_success,
                bad_success,
            } => {
                let pi_good = p_bg / (p_gb + p_bg);
                pi_good * good_success + (1.0 - pi_good) * bad_success
            }
        }
    }

    /// Exact distribution of the delivered-symbol count `R` out of `n`
    /// sent: `dist[r] = P(R = r)`, length `n + 1`.
    pub fn delivered_distribution(&self, n: usize) -> Vec<f64> {
        match *self {
            FountainChannel::Iid { loss } => {
                let p = 1.0 - loss;
                // Binomial via the same forward DP shape as the GE case —
                // numerically benign for the n ≤ a few hundred we model.
                let mut dist = vec![0.0; n + 1];
                dist[0] = 1.0;
                for i in 0..n {
                    for r in (0..=i).rev() {
                        let mass = dist[r];
                        dist[r] = mass * (1.0 - p);
                        dist[r + 1] += mass * p;
                    }
                }
                dist
            }
            FountainChannel::Burst {
                p_gb,
                p_bg,
                good_success,
                bad_success,
            } => {
                let pi_good = p_bg / (p_gb + p_bg);
                // f[state][r] = P(after i symbols: chain in `state`, r delivered).
                let mut good = vec![0.0f64; n + 1];
                let mut bad = vec![0.0f64; n + 1];
                good[0] = pi_good;
                bad[0] = 1.0 - pi_good;
                for _ in 0..n {
                    let mut next_good = vec![0.0f64; n + 1];
                    let mut next_bad = vec![0.0f64; n + 1];
                    for r in 0..n {
                        // Per symbol: deliver with the state's success
                        // probability, then transition the chain.
                        let g = good[r];
                        if g > 0.0 {
                            for (delivered, p_del) in
                                [(true, good_success), (false, 1.0 - good_success)]
                            {
                                let r2 = if delivered { r + 1 } else { r };
                                next_good[r2] += g * p_del * (1.0 - p_gb);
                                next_bad[r2] += g * p_del * p_gb;
                            }
                        }
                        let b = bad[r];
                        if b > 0.0 {
                            for (delivered, p_del) in
                                [(true, bad_success), (false, 1.0 - bad_success)]
                            {
                                let r2 = if delivered { r + 1 } else { r };
                                next_bad[r2] += b * p_del * (1.0 - p_bg);
                                next_good[r2] += b * p_del * p_bg;
                            }
                        }
                    }
                    good = next_good;
                    bad = next_bad;
                }
                (0..=n).map(|r| good[r] + bad[r]).collect()
            }
        }
    }

    /// The decode threshold `R*` for a `k`-source block sent as `n`
    /// symbols with peeling margin `m` (see the module docs): the least
    /// delivered count from which peeling completes.
    pub fn decode_threshold(k: usize, n: usize, margin: f64) -> usize {
        let kf = k as f64;
        let nf = n as f64;
        let r_star = kf * nf * (1.0 + margin) / (nf + margin * kf);
        (r_star.ceil() as usize).clamp(k, n.max(k))
    }

    /// P(the receiver fails to decode a `k`-source block sent as `n`
    /// symbols), thresholding the exact delivered distribution at the
    /// margin-`m` decode threshold. 1.0 whenever `n` cannot reach the
    /// threshold at all.
    pub fn decode_failure_prob(&self, k: usize, n: usize, margin: f64) -> f64 {
        if n < k {
            return 1.0;
        }
        let threshold = Self::decode_threshold(k, n, margin);
        if threshold > n {
            return 1.0;
        }
        let dist = self.delivered_distribution(n);
        dist[..threshold].iter().sum::<f64>().clamp(0.0, 1.0)
    }
}

/// The fountain transport's delay term: symbols serialise at a fixed
/// per-symbol service time, the overhead multiplies the airtime, and a
/// failed block costs a full re-spray (renewal-reward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FountainDelayModel {
    /// Per-symbol service time at the sender, seconds (from the Section 4
    /// service mixture: encryption + backoff + transmission of one
    /// symbol-sized packet).
    pub symbol_service_s: f64,
    /// The delivery process under the stream.
    pub channel: FountainChannel,
    /// Peeling margin (see [`DEFAULT_PEELING_MARGIN`]).
    pub margin: f64,
}

impl FountainDelayModel {
    /// Symbols sent for a `k`-source block at overhead ε.
    pub fn symbols_sent(k: usize, overhead: f64) -> usize {
        k + (k as f64 * overhead).ceil() as usize
    }

    /// Airtime to spray one block once: `n · symbol_service_s`.
    pub fn spray_delay_s(&self, k: usize, overhead: f64) -> f64 {
        Self::symbols_sent(k, overhead) as f64 * self.symbol_service_s
    }

    /// P(decode failure) for one spray of a `k`-source block.
    pub fn decode_failure_prob(&self, k: usize, overhead: f64) -> f64 {
        self.channel
            .decode_failure_prob(k, Self::symbols_sent(k, overhead), self.margin)
    }

    /// Expected delay to *deliver* a block: each spray costs
    /// `n·symbol_service_s` and succeeds with probability `1 − p_fail`,
    /// so the renewal-reward mean is `n·t / (1 − p_fail)`. Infinite when
    /// the overhead cannot beat the loss rate at all (`p_fail = 1`).
    pub fn expected_delay_s(&self, k: usize, overhead: f64) -> f64 {
        let p_fail = self.decode_failure_prob(k, overhead);
        let spray = self.spray_delay_s(k, overhead);
        if p_fail >= 1.0 {
            f64::INFINITY
        } else {
            spray / (1.0 - p_fail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_net::channel::{GilbertElliottChannel, LossChannel};

    const BURST: FountainChannel = FountainChannel::Burst {
        p_gb: 0.03,
        p_bg: 0.3,
        good_success: 0.995,
        bad_success: 0.6,
    };

    #[test]
    fn delivered_distribution_is_a_probability_distribution() {
        for chan in [FountainChannel::Iid { loss: 0.1 }, BURST] {
            for n in [0usize, 1, 7, 40] {
                let dist = chan.delivered_distribution(n);
                assert_eq!(dist.len(), n + 1);
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "mass {total} at n={n}");
                assert!(dist.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            }
        }
    }

    #[test]
    fn iid_distribution_matches_binomial_moments() {
        let chan = FountainChannel::Iid { loss: 0.2 };
        let n = 50;
        let dist = chan.delivered_distribution(n);
        let mean: f64 = dist.iter().enumerate().map(|(r, p)| r as f64 * p).sum();
        assert!((mean - 40.0).abs() < 1e-9, "binomial mean {mean}");
        let var: f64 = dist
            .iter()
            .enumerate()
            .map(|(r, p)| (r as f64 - mean).powi(2) * p)
            .sum();
        assert!((var - 50.0 * 0.8 * 0.2).abs() < 1e-9, "binomial var {var}");
    }

    #[test]
    fn burst_mean_matches_stationary_success_rate() {
        let n = 200;
        let dist = BURST.delivered_distribution(n);
        let mean: f64 = dist.iter().enumerate().map(|(r, p)| r as f64 * p).sum();
        assert!(
            (mean / n as f64 - BURST.success_rate()).abs() < 1e-9,
            "stationary start ⇒ mean delivery = stationary rate, got {}",
            mean / n as f64
        );
    }

    #[test]
    fn burst_has_fatter_low_tail_than_iid_at_equal_rate() {
        // Same long-run success rate, but bursts concentrate failures:
        // the probability of losing many symbols is higher under GE.
        let iid = FountainChannel::Iid {
            loss: 1.0 - BURST.success_rate(),
        };
        let n = 60;
        let lo = n / 2;
        let tail = |d: &[f64]| d[..lo].iter().sum::<f64>();
        let ge_tail = tail(&BURST.delivered_distribution(n));
        let iid_tail = tail(&iid.delivered_distribution(n));
        assert!(
            ge_tail > iid_tail,
            "GE low tail {ge_tail:e} must exceed iid {iid_tail:e}"
        );
    }

    #[test]
    fn decode_threshold_interpolates_k_to_k_times_margin() {
        let k = 40;
        assert_eq!(FountainChannel::decode_threshold(k, k, 0.35), k);
        let far = FountainChannel::decode_threshold(k, 100 * k, 0.35);
        assert!((far as f64 - k as f64 * 1.35).abs() <= 1.0, "far {far}");
        let mid = FountainChannel::decode_threshold(k, 2 * k, 0.35);
        assert!(mid > k && mid < (k as f64 * 1.35).ceil() as usize + 1);
    }

    #[test]
    fn failure_prob_decreases_with_overhead_and_hits_edges() {
        let chan = BURST;
        let k = 40;
        let p0 = chan.decode_failure_prob(k, k, DEFAULT_PEELING_MARGIN);
        let p1 = chan.decode_failure_prob(k, k + k / 4, DEFAULT_PEELING_MARGIN);
        let p2 = chan.decode_failure_prob(k, 2 * k, DEFAULT_PEELING_MARGIN);
        assert!(p0 > p1 && p1 > p2, "monotone in overhead: {p0} {p1} {p2}");
        assert!((0.0..=1.0).contains(&p2));
        assert_eq!(chan.decode_failure_prob(k, k - 1, 0.35), 1.0);
        // Lossless channel at zero overhead decodes surely.
        let clean = FountainChannel::Iid { loss: 0.0 };
        assert_eq!(clean.decode_failure_prob(k, k, DEFAULT_PEELING_MARGIN), 0.0);
    }

    #[test]
    fn delay_model_charges_overhead_and_failures() {
        let model = FountainDelayModel {
            symbol_service_s: 1e-3,
            channel: FountainChannel::Iid { loss: 0.1 },
            margin: DEFAULT_PEELING_MARGIN,
        };
        let k = 40;
        assert_eq!(FountainDelayModel::symbols_sent(k, 0.25), 50);
        assert!((model.spray_delay_s(k, 0.25) - 0.05).abs() < 1e-12);
        let d_low = model.expected_delay_s(k, 0.5);
        let d_high = model.expected_delay_s(k, 1.0);
        assert!(d_low.is_finite() && d_high.is_finite());
        // More overhead costs more airtime once failures are rare.
        assert!(d_high > d_low);
        // Overhead below the loss floor cannot deliver: infinite delay.
        let doomed = FountainDelayModel {
            symbol_service_s: 1e-3,
            channel: FountainChannel::Iid { loss: 1.0 },
            margin: DEFAULT_PEELING_MARGIN,
        };
        assert!(doomed.expected_delay_s(k, 0.5).is_infinite());
    }

    #[test]
    fn matches_metered_simulation_of_the_channel() {
        // The GE DP must agree with brute-force simulation of the same
        // chain (tie to the net-layer channel implementation).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 30;
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let mut chan = GilbertElliottChannel::new(0.03, 0.3, 0.995, 0.6);
            let mut r = 0usize;
            for _ in 0..n {
                if chan.transmit(&mut rng) {
                    r += 1;
                }
            }
            counts[r] += 1;
        }
        let dist = BURST.delivered_distribution(n);
        let mean_dp: f64 = dist.iter().enumerate().map(|(r, p)| r as f64 * p).sum();
        let mean_sim: f64 = counts
            .iter()
            .enumerate()
            .map(|(r, &c)| r as f64 * c as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean_dp - mean_sim).abs() < 0.15,
            "DP mean {mean_dp} vs sim mean {mean_sim}"
        );
    }
}
