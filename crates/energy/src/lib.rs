//! # thrifty-energy
//!
//! Device power model and energy accounting — the substitute for the
//! paper's Monsoon power-monitor measurements (Section 6.3).
//!
//! The paper measures phone power during the transfer and reports, e.g.,
//! that on the Samsung Galaxy S-II with slow-motion video a fully encrypted
//! stream draws **+140%** over the unencrypted baseline while encrypting
//! only I-frames draws **+11%** (a 92% saving), and that encrypting only
//! P-frames costs more than encrypting only I-frames.
//!
//! Two effects produce that shape, and the model captures both:
//!
//! * a **per-byte CPU cost** — cipher cycles × joules/cycle (3DES ≫ AES);
//! * a **duty-cycle cost** — every frame whose packets need encryption
//!   wakes the CPU/crypto path out of its low-power state for a wake
//!   window. P-frames arrive 29× more often than I-frames, so P-encryption
//!   keeps the core awake almost continuously while I-encryption lets it
//!   sleep ~97% of the time. This is why the paper's I-only policy is so
//!   much cheaper than its byte count alone would suggest.
//!
//! [`monsoon_uah_to_watts`] implements the paper's eq. (29) conversion, and
//! [`PowerMeter`] integrates a simulated trace the way the Monsoon does.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use thrifty_analytic::policy::Policy;
use thrifty_video::encoder::EncodedStream;

/// eq. (29): convert a Monsoon reading `v` in µAh over `duration_s` seconds
/// at `voltage` volts into average watts.
pub fn monsoon_uah_to_watts(v_uah: f64, voltage: f64, duration_s: f64) -> f64 {
    assert!(duration_s > 0.0, "duration must be positive");
    v_uah * voltage * 3600.0 * 1e-6 / duration_s
}

/// Inverse of [`monsoon_uah_to_watts`] — what the Monsoon would display.
pub fn watts_to_monsoon_uah(watts: f64, voltage: f64, duration_s: f64) -> f64 {
    watts * duration_s / (voltage * 3600.0 * 1e-6)
}

/// Power characteristics of one device (calibrated to Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Device name (matches the analytic crate's `DeviceSpec`).
    pub name: &'static str,
    /// Baseline draw while the app streams without encryption: screen,
    /// SoC base load and WiFi radio, watts.
    pub baseline_w: f64,
    /// Extra draw while the CPU/crypto path is out of its sleep state, W.
    pub crypto_active_w: f64,
    /// Wake window per encrypted frame: the core cannot re-enter sleep for
    /// this long around each activation, seconds.
    pub wake_window_s: f64,
    /// Energy per cipher cycle, joules (per-byte work term).
    pub joules_per_cycle: f64,
    /// CPU clock, GHz (converts cycles to busy time).
    pub clock_ghz: f64,
}

/// Samsung Galaxy S-II (1.2 GHz Cortex-A9, 45 nm) — the less efficient of
/// the paper's two devices: the steepest observed increase is +140%.
pub const SAMSUNG_GALAXY_S2_POWER: PowerProfile = PowerProfile {
    name: "Samsung S-II",
    baseline_w: 1.15,
    crypto_active_w: 1.55,
    wake_window_s: 28e-3,
    joules_per_cycle: 0.65e-9,
    clock_ghz: 1.2,
};

/// HTC Amaze 4G (1.5 GHz Snapdragon S3) — "the increase in the power
/// consumption is not as steep; the largest increase is by 50%".
pub const HTC_AMAZE_4G_POWER: PowerProfile = PowerProfile {
    name: "HTC Amaze 4G",
    baseline_w: 1.35,
    crypto_active_w: 0.62,
    wake_window_s: 22e-3,
    joules_per_cycle: 0.30e-9,
    clock_ghz: 1.5,
};

/// Per-second workload a policy puts on the crypto path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptoLoad {
    /// Encrypted payload bytes per second of streaming.
    pub encrypted_bytes_per_s: f64,
    /// Frames per second that contain at least one encrypted packet
    /// (each wakes the crypto path once).
    pub encrypted_frames_per_s: f64,
    /// Cipher cycles per encrypted byte (from the algorithm).
    pub cycles_per_byte: f64,
}

impl CryptoLoad {
    /// Derive the load a policy induces on a coded stream.
    ///
    /// Uses expected values: a frame counts as "encrypted" with the
    /// per-class selection probability of the policy (for fractional
    /// policies this is the per-frame activation probability).
    pub fn from_stream(stream: &EncodedStream, policy: Policy) -> Self {
        let duration = stream.duration_s().max(f64::MIN_POSITIVE);
        let mut enc_bytes = 0.0;
        let mut enc_frames = 0.0;
        for f in &stream.frames {
            let q = policy.mode.encrypt_prob(f.ftype);
            enc_bytes += q * f.bytes as f64;
            enc_frames += q; // probability this frame wakes the crypto path
        }
        CryptoLoad {
            encrypted_bytes_per_s: enc_bytes / duration,
            encrypted_frames_per_s: enc_frames / duration,
            cycles_per_byte: 25.0 * policy.algorithm.relative_cost(),
        }
    }

    /// A load with nothing encrypted.
    pub fn idle() -> Self {
        CryptoLoad {
            encrypted_bytes_per_s: 0.0,
            encrypted_frames_per_s: 0.0,
            cycles_per_byte: 0.0,
        }
    }
}

impl PowerProfile {
    /// Mean power while streaming under the given crypto load, watts.
    pub fn power_w(&self, load: &CryptoLoad) -> f64 {
        // Duty cycle of the awake state: activations × window, capped at 1.
        let duty = (load.encrypted_frames_per_s * self.wake_window_s).min(1.0);
        let cycles_per_s = load.encrypted_bytes_per_s * load.cycles_per_byte;
        self.baseline_w + self.crypto_active_w * duty + self.joules_per_cycle * cycles_per_s
    }

    /// Energy for a transfer of the given duration, joules.
    pub fn energy_j(&self, load: &CryptoLoad, duration_s: f64) -> f64 {
        self.power_w(load) * duration_s
    }

    /// Relative power increase of `load` over the unencrypted baseline
    /// (`0.11` ⇔ "+11%").
    pub fn relative_increase(&self, load: &CryptoLoad) -> f64 {
        self.power_w(load) / self.baseline_w - 1.0
    }
}

/// Integrates an instantaneous power trace like the Monsoon monitor: feed
/// `(timestamp, watts)` samples, read back mean power and the equivalent
/// µAh figure.
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    samples: Vec<(f64, f64)>,
}

impl PowerMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an instantaneous `(time_s, watts)` sample; times must be
    /// non-decreasing.
    pub fn record(&mut self, time_s: f64, watts: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(time_s >= last, "samples must be time-ordered");
        }
        self.samples.push((time_s, watts));
    }

    /// Trapezoidal energy integral over the recorded trace, joules.
    pub fn energy_j(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0))
            .sum()
    }

    /// Mean power over the trace, watts (0 for fewer than 2 samples).
    pub fn mean_power_w(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(t0, _)), Some(&(t1, _))) if t1 > t0 => self.energy_j() / (t1 - t0),
            _ => 0.0,
        }
    }

    /// What the Monsoon would display for this trace at `voltage` volts.
    pub fn monsoon_uah(&self, voltage: f64) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(t0, _)), Some(&(t1, _))) if t1 > t0 => {
                watts_to_monsoon_uah(self.mean_power_w(), voltage, t1 - t0)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrifty_analytic::policy::{EncryptionMode, Policy};
    use thrifty_crypto::Algorithm;
    use thrifty_video::encoder::StatisticalEncoder;
    use thrifty_video::motion::MotionLevel;

    fn stream(motion: MotionLevel) -> EncodedStream {
        let mut rng = StdRng::seed_from_u64(42);
        StatisticalEncoder::new(motion, 30).encode(300, &mut rng)
    }

    fn load(motion: MotionLevel, alg: Algorithm, mode: EncryptionMode) -> CryptoLoad {
        CryptoLoad::from_stream(&stream(motion), Policy::new(alg, mode))
    }

    #[test]
    fn eq29_roundtrip() {
        let w = monsoon_uah_to_watts(5000.0, 3.9, 35.0);
        let v = watts_to_monsoon_uah(w, 3.9, 35.0);
        assert!((v - 5000.0).abs() < 1e-9);
        // Hand check: 1000 µAh at 3.9 V over 1 hour:
        // 1000e-6 Ah · 3.9 V = 3.9 mWh ⇒ over 3600 s ⇒ 3.9e-3 W.
        assert!((monsoon_uah_to_watts(1000.0, 3.9, 3600.0) - 3.9e-3).abs() < 1e-12);
    }

    #[test]
    fn policy_power_ordering_none_i_p_all() {
        for profile in [SAMSUNG_GALAXY_S2_POWER, HTC_AMAZE_4G_POWER] {
            for motion in [MotionLevel::Low, MotionLevel::High] {
                let p = |mode| profile.power_w(&load(motion, Algorithm::Aes256, mode));
                let none = p(EncryptionMode::None);
                let i = p(EncryptionMode::IFrames);
                let pp = p(EncryptionMode::PFrames);
                let all = p(EncryptionMode::All);
                assert!(
                    none < i && i < pp && pp <= all,
                    "{}/{motion}: {none} {i} {pp} {all}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn samsung_slow_matches_paper_headlines() {
        // +140% for all (3DES panel), +11% for I-only, ⇒ ~92% savings.
        let profile = SAMSUNG_GALAXY_S2_POWER;
        let all = profile.relative_increase(&load(
            MotionLevel::Low,
            Algorithm::TripleDes,
            EncryptionMode::All,
        ));
        let i_only = profile.relative_increase(&load(
            MotionLevel::Low,
            Algorithm::TripleDes,
            EncryptionMode::IFrames,
        ));
        assert!((1.0..2.0).contains(&all), "all-policy increase {all}");
        assert!(i_only < 0.2, "I-only increase {i_only}");
        let savings = (all - i_only) / all;
        assert!(savings > 0.85, "savings {savings} should be ≈ 92%");
    }

    #[test]
    fn htc_increases_are_flatter_than_samsung() {
        for motion in [MotionLevel::Low, MotionLevel::High] {
            let s2 = SAMSUNG_GALAXY_S2_POWER.relative_increase(&load(
                motion,
                Algorithm::Aes256,
                EncryptionMode::All,
            ));
            let htc = HTC_AMAZE_4G_POWER.relative_increase(&load(
                motion,
                Algorithm::Aes256,
                EncryptionMode::All,
            ));
            assert!(htc < s2, "{motion}: HTC {htc} vs Samsung {s2}");
        }
    }

    #[test]
    fn tdes_draws_more_than_aes() {
        let profile = SAMSUNG_GALAXY_S2_POWER;
        let aes =
            profile.power_w(&load(MotionLevel::High, Algorithm::Aes128, EncryptionMode::All));
        let tdes = profile.power_w(&load(
            MotionLevel::High,
            Algorithm::TripleDes,
            EncryptionMode::All,
        ));
        assert!(tdes > aes);
    }

    #[test]
    fn fractional_policy_interpolates() {
        let profile = SAMSUNG_GALAXY_S2_POWER;
        let i = profile.power_w(&load(
            MotionLevel::High,
            Algorithm::Aes256,
            EncryptionMode::IFrames,
        ));
        let i20 = profile.power_w(&load(
            MotionLevel::High,
            Algorithm::Aes256,
            EncryptionMode::IPlusFractionP(0.2),
        ));
        let all = profile.power_w(&load(
            MotionLevel::High,
            Algorithm::Aes256,
            EncryptionMode::All,
        ));
        assert!(i < i20 && i20 < all);
        // Figure 9 text: I+20%P ≈ 1.48 W vs I-only 1.28 W on the Samsung —
        // the step from I to I+20%P is modest compared to the full jump.
        assert!((i20 - i) < 0.5 * (all - i));
    }

    #[test]
    fn watts_are_in_phone_range() {
        for profile in [SAMSUNG_GALAXY_S2_POWER, HTC_AMAZE_4G_POWER] {
            for mode in EncryptionMode::TABLE1 {
                for alg in Algorithm::ALL {
                    let w = profile.power_w(&load(MotionLevel::High, alg, mode));
                    assert!(
                        (0.8..5.0).contains(&w),
                        "{} {alg} {mode}: {w} W",
                        profile.name
                    );
                }
            }
        }
    }

    #[test]
    fn meter_integrates_trapezoid() {
        let mut m = PowerMeter::new();
        m.record(0.0, 1.0);
        m.record(1.0, 3.0);
        m.record(2.0, 3.0);
        // 0..1: mean 2 W ⇒ 2 J; 1..2: 3 W ⇒ 3 J.
        assert!((m.energy_j() - 5.0).abs() < 1e-12);
        assert!((m.mean_power_w() - 2.5).abs() < 1e-12);
        let uah = m.monsoon_uah(3.9);
        assert!((monsoon_uah_to_watts(uah, 3.9, 2.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reads_zero() {
        let m = PowerMeter::new();
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.mean_power_w(), 0.0);
        assert_eq!(m.monsoon_uah(3.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "samples must be time-ordered")]
    fn meter_rejects_unordered_samples() {
        let mut m = PowerMeter::new();
        m.record(1.0, 1.0);
        m.record(0.5, 1.0);
    }
}
