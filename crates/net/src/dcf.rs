//! IEEE 802.11 DCF fixed-point model and 802.11g airtime arithmetic.
//!
//! The paper computes its packet success rate `p_s` with the fixed-point
//! MAC/PHY model of Baras et al. \[13\]; that technical report is not
//! publicly archived, so we substitute the canonical fixed-point analysis
//! of the same protocol — Bianchi's saturated DCF model (IEEE JSAC 2000) —
//! which exposes exactly the quantities Section 4 consumes:
//!
//! * the conditional collision probability `p` and attempt rate `τ`,
//!   solved as a fixed point;
//! * the **packet success rate** `p_s = (1 − τ)^{n−1} · (1 − PER)`
//!   (no collision with the other `n − 1` stations, no channel error);
//! * the mean contention-window wait, from which the paper's exponential
//!   backoff rate `λ_b` (eq. 7) is derived;
//! * 802.11g frame airtime for the transmission time `T_t` (eqs. 13, 16).

/// PHY/MAC timing and rate parameters (defaults: 802.11g, ERP-OFDM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyParams {
    /// Data rate for the payload portion, bits/s.
    pub data_rate_bps: f64,
    /// Control-response (ACK) rate, bits/s.
    pub basic_rate_bps: f64,
    /// Slot time, seconds.
    pub slot_s: f64,
    /// SIFS, seconds.
    pub sifs_s: f64,
    /// DIFS, seconds.
    pub difs_s: f64,
    /// PHY preamble + header time per frame, seconds.
    pub phy_overhead_s: f64,
    /// MAC header + FCS bytes added to each data frame.
    pub mac_overhead_bytes: usize,
    /// ACK frame length, bytes.
    pub ack_bytes: usize,
    /// Minimum contention window (W₀ slots).
    pub cw_min: u32,
    /// Number of backoff stages (CWmax = 2^m · CWmin).
    pub backoff_stages: u32,
}

impl PhyParams {
    /// IEEE 802.11g defaults at 54 Mbit/s (the paper's testbed, Table 1).
    pub fn g_54mbps() -> Self {
        PhyParams {
            data_rate_bps: 54e6,
            basic_rate_bps: 24e6,
            slot_s: 9e-6,
            sifs_s: 10e-6,
            difs_s: 28e-6,
            phy_overhead_s: 20e-6,
            mac_overhead_bytes: 28, // 24-byte MAC header + 4-byte FCS
            ack_bytes: 14,
            cw_min: 16,
            backoff_stages: 6,
        }
    }

    /// Airtime of one data frame carrying `payload_bytes` (RTP/UDP/IP
    /// payload included by the caller), including the SIFS + ACK exchange.
    pub fn tx_time_s(&self, payload_bytes: usize) -> f64 {
        let data_bits = 8.0 * (payload_bytes + self.mac_overhead_bytes) as f64;
        let ack_bits = 8.0 * self.ack_bytes as f64;
        self.difs_s
            + self.phy_overhead_s
            + data_bits / self.data_rate_bps
            + self.sifs_s
            + self.phy_overhead_s
            + ack_bits / self.basic_rate_bps
    }
}

/// Solved operating point of the DCF fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfSolution {
    /// Per-slot transmission attempt probability of a station (τ).
    pub tau: f64,
    /// Conditional collision probability seen by an attempt (p).
    pub collision_prob: f64,
    /// Packet success rate `p_s` including channel errors — the paper's key
    /// network parameter (Section 4.1).
    pub packet_success_rate: f64,
    /// Mean single backoff wait after a collision, seconds.
    pub mean_backoff_wait_s: f64,
    /// Rate `λ_b` of the exponential backoff-interval model in eq. (7).
    pub backoff_rate_hz: f64,
}

/// Why a DCF model could not be built or solved.
///
/// The model's fields are public (so calibrated scenarios can be edited in
/// place); a struct assembled with degenerate values used to drive the
/// fixed-point iteration into `powf` of a negative base — a NaN that then
/// leaked into every downstream delay figure. [`DcfModel::try_solve`]
/// reports these inputs as errors instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DcfError {
    /// `stations = 0`: the model needs at least the sender itself.
    NoStations,
    /// The channel PER is outside `[0, 1)` (1.0 means no packet ever
    /// succeeds — the saturation point where `p_s = 0` and the mean backoff
    /// time diverges).
    InvalidPer(f64),
    /// A PHY timing/window parameter is non-finite or non-positive.
    InvalidPhy,
}

impl std::fmt::Display for DcfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcfError::NoStations => write!(f, "need at least the sender itself"),
            DcfError::InvalidPer(per) => write!(f, "PER must be in [0, 1), got {per}"),
            DcfError::InvalidPhy => write!(f, "PHY parameters must be finite and positive"),
        }
    }
}

impl std::error::Error for DcfError {}

/// Bianchi DCF model: `n` contending stations plus a channel packet error
/// rate (PER) for non-collision losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfModel {
    /// Number of contending stations on the WLAN (≥ 1).
    pub stations: usize,
    /// Packet error rate of the radio channel itself (0..1).
    pub channel_per: f64,
    /// PHY parameters.
    pub phy: PhyParams,
}

impl DcfModel {
    /// Build a model; panics on nonsensical inputs.
    pub fn new(stations: usize, channel_per: f64, phy: PhyParams) -> Self {
        match Self::try_new(stations, channel_per, phy) {
            Ok(m) => m,
            Err(DcfError::NoStations) => panic!("need at least the sender itself"),
            Err(DcfError::InvalidPer(_)) => panic!("PER must be in [0, 1)"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Build a model, reporting degenerate inputs as [`DcfError`]s.
    pub fn try_new(stations: usize, channel_per: f64, phy: PhyParams) -> Result<Self, DcfError> {
        let model = DcfModel {
            stations,
            channel_per,
            phy,
        };
        model.validate()?;
        Ok(model)
    }

    fn validate(&self) -> Result<(), DcfError> {
        if self.stations == 0 {
            return Err(DcfError::NoStations);
        }
        if !(0.0..1.0).contains(&self.channel_per) {
            return Err(DcfError::InvalidPer(self.channel_per));
        }
        let phy = &self.phy;
        let times_finite = [
            phy.data_rate_bps,
            phy.basic_rate_bps,
            phy.slot_s,
            phy.sifs_s,
            phy.difs_s,
            phy.phy_overhead_s,
        ]
        .iter()
        .all(|t| t.is_finite() && *t > 0.0);
        if !times_finite || phy.cw_min == 0 {
            return Err(DcfError::InvalidPhy);
        }
        Ok(())
    }

    /// Bianchi's τ(p): attempt probability given collision probability.
    fn tau_of_p(&self, p: f64) -> f64 {
        let w = self.phy.cw_min as f64;
        let m = self.phy.backoff_stages as f64;
        if p >= 1.0 {
            return 0.0;
        }
        let num = 2.0 * (1.0 - 2.0 * p);
        let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m));
        num / den
    }

    /// Solve the fixed point `p = 1 − (1 − τ(p))^{n−1}` by damped iteration.
    ///
    /// Panics if the model's (public) fields were edited into a degenerate
    /// state after construction; use [`try_solve`](Self::try_solve) to get a
    /// `Result` instead. Never returns NaN.
    pub fn solve(&self) -> DcfSolution {
        self.try_solve()
            .unwrap_or_else(|e| panic!("DCF model is degenerate: {e}"))
    }

    /// Solve the fixed point, validating the model first so degenerate
    /// inputs (`stations = 0`, `channel_per ≥ 1`, broken PHY timings)
    /// surface as [`DcfError`]s rather than NaN operating points.
    pub fn try_solve(&self) -> Result<DcfSolution, DcfError> {
        self.validate()?;
        let n = self.stations as f64;
        let mut p = 0.1;
        for _ in 0..10_000 {
            let tau = self.tau_of_p(p);
            let p_next = 1.0 - (1.0 - tau).powf(n - 1.0);
            let p_new = 0.5 * p + 0.5 * p_next;
            if (p_new - p).abs() < 1e-12 {
                p = p_new;
                break;
            }
            p = p_new;
        }
        let tau = self.tau_of_p(p);
        let collision = 1.0 - (1.0 - tau).powf(n - 1.0);
        let p_s = (1.0 - collision) * (1.0 - self.channel_per);
        // After a collision the station draws a fresh backoff uniform in
        // [0, CW). Averaged over the (geometric) stage distribution the mean
        // wait is well approximated by the stage-1 window; the paper only
        // needs an exponential with matching mean.
        let mean_cw_slots = self.phy.cw_min as f64; // E[U(0, 2·CWmin)] = CWmin
        let mean_backoff_wait_s = mean_cw_slots * self.phy.slot_s;
        Ok(DcfSolution {
            tau,
            collision_prob: collision,
            packet_success_rate: p_s,
            mean_backoff_wait_s,
            backoff_rate_hz: 1.0 / mean_backoff_wait_s,
        })
    }
}

impl DcfSolution {
    /// Expected time a packet spends in backoff before its successful
    /// attempt: `(1/p_s − 1)` failed attempts, each followed by a mean
    /// backoff wait — the per-packet contention cost that the calibrated
    /// service time (eqs. 6–7) folds in. Grows without bound as `p_s → 0`.
    pub fn expected_backoff_s(&self) -> f64 {
        (1.0 / self.packet_success_rate - 1.0) * self.mean_backoff_wait_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> DcfModel {
        DcfModel::new(n, 0.0, PhyParams::g_54mbps())
    }

    #[test]
    fn single_station_never_collides() {
        let s = model(1).solve();
        assert!(s.collision_prob.abs() < 1e-9);
        assert!((s.packet_success_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collision_probability_grows_with_contention() {
        let mut last = -1.0;
        for n in [1usize, 2, 5, 10, 20, 50] {
            let s = model(n).solve();
            assert!(
                s.collision_prob > last,
                "p must grow with n: n={n}, p={}",
                s.collision_prob
            );
            assert!((0.0..1.0).contains(&s.collision_prob));
            last = s.collision_prob;
        }
    }

    #[test]
    fn fixed_point_is_consistent() {
        for n in [2usize, 5, 15] {
            let m = model(n);
            let s = m.solve();
            let p_implied = 1.0 - (1.0 - s.tau).powf(n as f64 - 1.0);
            assert!(
                (p_implied - s.collision_prob).abs() < 1e-8,
                "fixed point violated at n={n}"
            );
        }
    }

    #[test]
    fn bianchi_known_ballpark() {
        // For n=10, CWmin=16 (802.11g class parameters) Bianchi's model gives
        // τ in the few-percent range and p around 0.3–0.5.
        let s = model(10).solve();
        assert!(s.tau > 0.01 && s.tau < 0.1, "tau={}", s.tau);
        assert!(
            s.collision_prob > 0.2 && s.collision_prob < 0.6,
            "p={}",
            s.collision_prob
        );
    }

    #[test]
    fn channel_per_multiplies_success() {
        let no_err = DcfModel::new(5, 0.0, PhyParams::g_54mbps()).solve();
        let with_err = DcfModel::new(5, 0.2, PhyParams::g_54mbps()).solve();
        let ratio = with_err.packet_success_rate / no_err.packet_success_rate;
        assert!((ratio - 0.8).abs() < 1e-9);
    }

    #[test]
    fn tx_time_increases_with_size_and_is_physical() {
        let phy = PhyParams::g_54mbps();
        let t_small = phy.tx_time_s(100);
        let t_big = phy.tx_time_s(1460);
        assert!(t_big > t_small);
        // A 1460-byte frame at 54 Mbps ≈ 0.22 ms payload + ~90 µs overheads.
        assert!(t_big > 200e-6 && t_big < 600e-6, "t_big={t_big}");
        // Marginal cost of 1360 extra bytes ≈ 1360·8/54e6 ≈ 201 µs.
        assert!(((t_big - t_small) - 1360.0 * 8.0 / 54e6).abs() < 1e-9);
    }

    #[test]
    fn backoff_rate_matches_mean() {
        let s = model(5).solve();
        assert!((s.backoff_rate_hz * s.mean_backoff_wait_s - 1.0).abs() < 1e-12);
        // CWmin=16 slots of 9µs ⇒ 144 µs mean wait.
        assert!((s.mean_backoff_wait_s - 144e-6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least the sender")]
    fn zero_stations_rejected() {
        DcfModel::new(0, 0.0, PhyParams::g_54mbps());
    }

    #[test]
    #[should_panic(expected = "PER must be in")]
    fn bad_per_rejected() {
        DcfModel::new(2, 1.0, PhyParams::g_54mbps());
    }

    #[test]
    fn per_packet_contention_cost_is_monotone_in_stations() {
        // The service-time ingredient the queue consumes — expected backoff
        // before success — must not decrease when contenders join, and the
        // success rate must not increase.
        let mut last_cost = -1.0;
        let mut last_ps = 2.0;
        for n in 1..=120usize {
            let s = model(n).solve();
            let cost = s.expected_backoff_s();
            assert!(
                cost >= last_cost,
                "backoff cost dropped at n={n}: {cost} after {last_cost}"
            );
            assert!(
                s.packet_success_rate <= last_ps,
                "p_s rose at n={n}: {} after {last_ps}",
                s.packet_success_rate
            );
            assert!(cost.is_finite() && s.packet_success_rate.is_finite());
            last_cost = cost;
            last_ps = s.packet_success_rate;
        }
    }

    #[test]
    fn degenerate_structs_error_instead_of_nan() {
        // The fields are public, so a struct literal can bypass `new`;
        // before `try_solve` validated, `stations = 0` drove the fixed point
        // through powf of a negative base and returned NaN.
        let zero_stations = DcfModel {
            stations: 0,
            channel_per: 0.0,
            phy: PhyParams::g_54mbps(),
        };
        assert_eq!(zero_stations.try_solve(), Err(DcfError::NoStations));

        let saturated = DcfModel {
            stations: 5,
            channel_per: 1.0,
            phy: PhyParams::g_54mbps(),
        };
        assert_eq!(saturated.try_solve(), Err(DcfError::InvalidPer(1.0)));

        let nan_per = DcfModel {
            stations: 5,
            channel_per: f64::NAN,
            phy: PhyParams::g_54mbps(),
        };
        assert!(matches!(nan_per.try_solve(), Err(DcfError::InvalidPer(_))));

        let mut broken_phy = PhyParams::g_54mbps();
        broken_phy.slot_s = f64::NAN;
        let bad_phy = DcfModel {
            stations: 5,
            channel_per: 0.02,
            phy: broken_phy,
        };
        assert_eq!(bad_phy.try_solve(), Err(DcfError::InvalidPhy));
    }

    #[test]
    #[should_panic(expected = "DCF model is degenerate")]
    fn solve_panics_rather_than_returning_nan() {
        let m = DcfModel {
            stations: 0,
            channel_per: 0.0,
            phy: PhyParams::g_54mbps(),
        };
        let _ = m.solve();
    }

    #[test]
    fn try_new_matches_new() {
        let a = DcfModel::try_new(5, 0.02, PhyParams::g_54mbps()).unwrap();
        let b = DcfModel::new(5, 0.02, PhyParams::g_54mbps());
        assert_eq!(a, b);
        assert_eq!(a.try_solve().unwrap(), b.solve());
    }

    #[test]
    fn expected_backoff_matches_geometric_mean() {
        let s = model(10).solve();
        let expected = (1.0 / s.packet_success_rate - 1.0) * s.mean_backoff_wait_s;
        assert!((s.expected_backoff_s() - expected).abs() < 1e-18);
        assert!(s.expected_backoff_s() > 0.0);
    }
}
