//! RTP and UDP wire formats (typed views over byte buffers).
//!
//! The paper's sender encapsulates each (possibly encrypted) video segment
//! in an RTP packet over UDP, and sets the **RTP marker bit** to tell the
//! legitimate receiver that the payload is encrypted (Section 5). These are
//! real RFC 3550 / RFC 768 encodings, in the style of smoltcp: a zero-copy
//! `Packet<T>` wrapper with checked construction and field accessors.

use bytes::{BufMut, BytesMut};

/// RTP fixed header length, bytes (no CSRC, no extension).
pub const RTP_HEADER_LEN: usize = 12;

/// UDP (8) + IPv4 (20) header overhead added below RTP, bytes.
pub const UDP_IP_OVERHEAD: usize = 28;

/// Errors from parsing wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        got: usize,
    },
    /// RTP version field is not 2.
    BadVersion(u8),
    /// A UDP length field smaller than the 8-byte header itself.
    BadLength(u16),
    /// A fragmentation header with an impossible fragment geometry
    /// (`total == 0`, or `frag >= total`).
    BadFragment {
        /// Fragment number carried on the wire.
        frag: u16,
        /// Advertised fragment count.
        total: u16,
    },
    /// A fountain header with impossible block geometry (`k == 0`,
    /// `symbol_len == 0`, or a `block_len` inconsistent with
    /// `k × symbol_len`).
    BadFountain {
        /// Advertised source-symbol count.
        k: u16,
        /// Advertised symbol length, bytes.
        symbol_len: u16,
        /// Advertised true block length, bytes.
        block_len: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated packet: need {need} bytes, got {got}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported RTP version {v}"),
            WireError::BadLength(l) => {
                write!(f, "UDP length field {l} is below the 8-byte header")
            }
            WireError::BadFragment { frag, total } => {
                write!(f, "impossible fragment geometry: fragment {frag} of {total}")
            }
            WireError::BadFountain {
                k,
                symbol_len,
                block_len,
            } => {
                write!(
                    f,
                    "impossible fountain geometry: k={k} symbol_len={symbol_len} block_len={block_len}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Decoded RTP header fields (the subset the application uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpHeader {
    /// Marker bit — set ⇔ the payload is encrypted (paper Section 5).
    pub marker: bool,
    /// Payload type (96 = dynamic, used for our H.264 profile).
    pub payload_type: u8,
    /// Sequence number.
    pub sequence: u16,
    /// Media timestamp (90 kHz clock for video).
    pub timestamp: u32,
    /// Synchronisation source identifier.
    pub ssrc: u32,
}

impl RtpHeader {
    /// Serialise header + payload into a fresh buffer.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(RTP_HEADER_LEN + payload.len());
        buf.put_u8(2 << 6); // V=2, P=0, X=0, CC=0
        buf.put_u8((u8::from(self.marker) << 7) | (self.payload_type & 0x7f));
        buf.put_u16(self.sequence);
        buf.put_u32(self.timestamp);
        buf.put_u32(self.ssrc);
        buf.put_slice(payload);
        buf.to_vec()
    }

    /// Serialise the 12-byte header into the front of `dst` in place —
    /// the zero-copy path: the packet buffer reserves [`RTP_HEADER_LEN`]
    /// bytes up front, the payload is built (and encrypted) behind them,
    /// and the header is stamped over the reserved prefix with no
    /// intermediate allocation. Byte-identical to the prefix of
    /// [`emit`](Self::emit).
    pub fn write_into(&self, dst: &mut [u8]) -> Result<(), WireError> {
        let Some((hdr, _)) = dst.split_first_chunk_mut::<RTP_HEADER_LEN>() else {
            return Err(WireError::Truncated {
                need: RTP_HEADER_LEN,
                got: dst.len(),
            });
        };
        let [s0, s1] = self.sequence.to_be_bytes();
        let [t0, t1, t2, t3] = self.timestamp.to_be_bytes();
        let [c0, c1, c2, c3] = self.ssrc.to_be_bytes();
        *hdr = [
            2 << 6, // V=2, P=0, X=0, CC=0
            (u8::from(self.marker) << 7) | (self.payload_type & 0x7f),
            s0,
            s1,
            t0,
            t1,
            t2,
            t3,
            c0,
            c1,
            c2,
            c3,
        ];
        Ok(())
    }
}

/// A typed view over an RTP packet buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> RtpPacket<T> {
    /// Wrap a buffer, validating length and version.
    pub fn parse(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < RTP_HEADER_LEN {
            return Err(WireError::Truncated {
                need: RTP_HEADER_LEN,
                got: b.len(),
            });
        }
        let version = b.first().map_or(0, |&v| v >> 6);
        if version != 2 {
            return Err(WireError::BadVersion(version));
        }
        Ok(RtpPacket { buffer })
    }

    /// Decoded header fields.
    pub fn header(&self) -> RtpHeader {
        let b = self.buffer.as_ref();
        // `parse` validated `len >= RTP_HEADER_LEN` at construction, so the
        // fixed prefix always destructures; the zeroed fallback is dead code
        // kept so this accessor can never panic on a corrupted invariant.
        match b.split_first_chunk::<RTP_HEADER_LEN>() {
            Some((&[_, m, s0, s1, t0, t1, t2, t3, c0, c1, c2, c3], _)) => RtpHeader {
                marker: m & 0x80 != 0,
                payload_type: m & 0x7f,
                sequence: u16::from_be_bytes([s0, s1]),
                timestamp: u32::from_be_bytes([t0, t1, t2, t3]),
                ssrc: u32::from_be_bytes([c0, c1, c2, c3]),
            },
            None => RtpHeader {
                marker: false,
                payload_type: 0,
                sequence: 0,
                timestamp: 0,
                ssrc: 0,
            },
        }
    }

    /// The payload after the fixed header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[RTP_HEADER_LEN..]
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> RtpPacket<T> {
    /// Mutable access to the payload (used for in-place decryption).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[RTP_HEADER_LEN..]
    }

    /// Set or clear the marker (encryption) bit in place.
    pub fn set_marker(&mut self, marker: bool) {
        // `parse` validated the length, so byte 1 always exists; `get_mut`
        // keeps the accessor total without a bounds-check panic path.
        if let Some(byte) = self.buffer.as_mut().get_mut(1) {
            if marker {
                *byte |= 0x80;
            } else {
                *byte &= 0x7f;
            }
        }
    }
}

/// Decoded UDP header (RFC 768).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Total datagram length (header + payload), bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Serialise header + payload (checksum transmitted as 0 — legal for
    /// IPv4 UDP and irrelevant to the model).
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(8 + payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        // RFC 768 carries a 16-bit length; our MTU-segmented payloads sit
        // far below the ceiling, and an oversized one saturates instead of
        // silently wrapping around.
        buf.put_u16(u16::try_from(8 + payload.len()).unwrap_or(u16::MAX));
        buf.put_u16(0);
        buf.put_slice(payload);
        buf.to_vec()
    }

    /// Parse a datagram into header and payload.
    pub fn parse(buffer: &[u8]) -> Result<(UdpHeader, &[u8]), WireError> {
        let Some((&[s0, s1, d0, d1, l0, l1, _, _], _)) = buffer.split_first_chunk::<8>() else {
            return Err(WireError::Truncated {
                need: 8,
                got: buffer.len(),
            });
        };
        let length = u16::from_be_bytes([l0, l1]);
        // A length below the header's own 8 bytes would make the payload
        // slice `[8..length]` inverted — reject it instead of panicking on
        // a hostile datagram.
        if length < 8 {
            return Err(WireError::BadLength(length));
        }
        if (length as usize) > buffer.len() {
            return Err(WireError::Truncated {
                need: length as usize,
                got: buffer.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([s0, s1]),
                dst_port: u16::from_be_bytes([d0, d1]),
                length,
            },
            &buffer[8..length as usize],
        ))
    }
}

/// Length of the pipeline fragmentation header, bytes.
pub const FRAG_HEADER_LEN: usize = 8;

/// The pipeline's fragmentation header — the role H.264 FU-A indicators
/// play in RFC 6184: which frame a fragment belongs to, its position and
/// the total fragment count, so reassembly never depends on arrival order.
///
/// Carried at the front of every RTP payload the threaded testbed emits.
/// Parsing is fully defensive: hostile or corrupted bytes yield a
/// descriptive [`WireError`], never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Absolute frame index (reserved values mark SPS/PPS lead-ins).
    pub frame: u32,
    /// Fragment number within the frame, `0..total`.
    pub frag: u16,
    /// Total fragments of the frame, `>= 1`.
    pub total: u16,
}

impl FragmentHeader {
    /// Build a header; callers are expected to keep `frag < total`.
    pub fn new(frame: u32, frag: u16, total: u16) -> Self {
        FragmentHeader { frame, frag, total }
    }

    /// Serialise to the 8-byte wire form.
    pub fn emit(&self) -> [u8; FRAG_HEADER_LEN] {
        let [f0, f1, f2, f3] = self.frame.to_be_bytes();
        let [g0, g1] = self.frag.to_be_bytes();
        let [t0, t1] = self.total.to_be_bytes();
        [f0, f1, f2, f3, g0, g1, t0, t1]
    }

    /// Parse a header off the front of `buffer`, returning it and the
    /// fragment body. Rejects short buffers and impossible geometry
    /// (`total == 0` or `frag >= total`) so a corrupted fragment becomes
    /// an erasure upstream instead of poisoning reassembly state.
    pub fn parse(buffer: &[u8]) -> Result<(FragmentHeader, &[u8]), WireError> {
        let Some((&[f0, f1, f2, f3, g0, g1, t0, t1], rest)) =
            buffer.split_first_chunk::<FRAG_HEADER_LEN>()
        else {
            return Err(WireError::Truncated {
                need: FRAG_HEADER_LEN,
                got: buffer.len(),
            });
        };
        let header = FragmentHeader {
            frame: u32::from_be_bytes([f0, f1, f2, f3]),
            frag: u16::from_be_bytes([g0, g1]),
            total: u16::from_be_bytes([t0, t1]),
        };
        if header.total == 0 || header.frag >= header.total {
            return Err(WireError::BadFragment {
                frag: header.frag,
                total: header.total,
            });
        }
        Ok((header, rest))
    }
}

/// Length of the fountain symbol header, bytes.
pub const FOUNTAIN_HEADER_LEN: usize = 16;

/// The fountain transport's per-symbol header: the `(block, symbol_id)`
/// coordinates an LT decoder needs to regenerate the symbol's neighbour
/// set from the shared session seed, plus the block geometry
/// (`k`, `symbol_len`, `block_len`) so a receiver can size its decoder
/// from the first symbol it happens to catch — rateless transports cannot
/// assume any particular symbol arrives first.
///
/// Parsing is fully defensive (panic-free lint tier): hostile or corrupted
/// bytes yield a descriptive [`WireError`] and become counted erasures
/// upstream, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FountainHeader {
    /// Source block (GOP) number within the session.
    pub block: u32,
    /// Encoded symbol id; ids `< k` are the systematic prefix.
    pub symbol_id: u32,
    /// Source symbols in the block, `>= 1`.
    pub k: u16,
    /// Symbol payload length, bytes, `>= 1`.
    pub symbol_len: u16,
    /// True (unpadded) block length in bytes; must satisfy
    /// `(k-1)·symbol_len < block_len <= k·symbol_len`.
    pub block_len: u32,
}

impl FountainHeader {
    /// Build a header; callers are expected to keep the geometry
    /// consistent (`parse` enforces it on the receive path).
    pub fn new(block: u32, symbol_id: u32, k: u16, symbol_len: u16, block_len: u32) -> Self {
        FountainHeader {
            block,
            symbol_id,
            k,
            symbol_len,
            block_len,
        }
    }

    /// Whether `(k, symbol_len, block_len)` describe a realisable block.
    fn geometry_ok(&self) -> bool {
        if self.k == 0 || self.symbol_len == 0 || self.block_len == 0 {
            return false;
        }
        let cap = self.k as u64 * self.symbol_len as u64;
        let floor = (self.k as u64 - 1) * self.symbol_len as u64;
        let len = self.block_len as u64;
        len > floor && len <= cap
    }

    /// Serialise to the 16-byte wire form.
    pub fn emit(&self) -> [u8; FOUNTAIN_HEADER_LEN] {
        let [b0, b1, b2, b3] = self.block.to_be_bytes();
        let [s0, s1, s2, s3] = self.symbol_id.to_be_bytes();
        let [k0, k1] = self.k.to_be_bytes();
        let [l0, l1] = self.symbol_len.to_be_bytes();
        let [n0, n1, n2, n3] = self.block_len.to_be_bytes();
        [
            b0, b1, b2, b3, s0, s1, s2, s3, k0, k1, l0, l1, n0, n1, n2, n3,
        ]
    }

    /// Parse a header off the front of `buffer`, returning it and the
    /// symbol payload. Rejects short buffers and impossible geometry
    /// (`k == 0`, `symbol_len == 0`, or a `block_len` outside
    /// `((k-1)·symbol_len, k·symbol_len]`) so a corrupted symbol becomes
    /// an erasure upstream instead of poisoning decoder state.
    pub fn parse(buffer: &[u8]) -> Result<(FountainHeader, &[u8]), WireError> {
        let Some((&[b0, b1, b2, b3, s0, s1, s2, s3, k0, k1, l0, l1, n0, n1, n2, n3], rest)) =
            buffer.split_first_chunk::<FOUNTAIN_HEADER_LEN>()
        else {
            return Err(WireError::Truncated {
                need: FOUNTAIN_HEADER_LEN,
                got: buffer.len(),
            });
        };
        let header = FountainHeader {
            block: u32::from_be_bytes([b0, b1, b2, b3]),
            symbol_id: u32::from_be_bytes([s0, s1, s2, s3]),
            k: u16::from_be_bytes([k0, k1]),
            symbol_len: u16::from_be_bytes([l0, l1]),
            block_len: u32::from_be_bytes([n0, n1, n2, n3]),
        };
        if !header.geometry_ok() {
            return Err(WireError::BadFountain {
                k: header.k,
                symbol_len: header.symbol_len,
                block_len: header.block_len,
            });
        }
        Ok((header, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RtpHeader {
        RtpHeader {
            marker: true,
            payload_type: 96,
            sequence: 4242,
            timestamp: 900_000,
            ssrc: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn rtp_roundtrip() {
        let payload = b"encrypted video segment";
        let wire = header().emit(payload);
        assert_eq!(wire.len(), RTP_HEADER_LEN + payload.len());
        let pkt = RtpPacket::parse(wire.as_slice()).expect("emitted RTP packet must parse");
        assert_eq!(pkt.header(), header());
        assert_eq!(pkt.payload(), payload);
    }

    #[test]
    fn write_into_matches_emit_prefix() {
        let h = header();
        let payload = [0x5A; 30];
        let emitted = h.emit(&payload);
        // In-place build: reserve header room, payload behind it, stamp.
        let mut buf = vec![0u8; RTP_HEADER_LEN];
        buf.extend_from_slice(&payload);
        h.write_into(&mut buf).expect("12-byte prefix fits");
        assert_eq!(buf, emitted, "write_into must be byte-identical to emit");
        // Short destinations surface as typed errors, never a panic.
        let mut short = [0u8; RTP_HEADER_LEN - 1];
        assert_eq!(
            h.write_into(&mut short),
            Err(WireError::Truncated { need: 12, got: 11 })
        );
    }

    #[test]
    fn marker_bit_signals_encryption() {
        let mut h = header();
        h.marker = false;
        let mut wire = h.emit(b"plain");
        {
            let pkt = RtpPacket::parse(wire.as_slice()).expect("clear-marker packet must parse");
            assert!(!pkt.header().marker);
        }
        let mut pkt = RtpPacket::parse(wire.as_mut_slice()).expect("mutable view must parse");
        pkt.set_marker(true);
        assert!(pkt.header().marker);
        // Setting the marker must not disturb the payload type.
        assert_eq!(pkt.header().payload_type, 96);
        pkt.set_marker(false);
        assert!(!pkt.header().marker);
    }

    #[test]
    fn payload_mut_allows_inplace_decryption() {
        let mut wire = header().emit(&[0xFF; 8]);
        let mut pkt = RtpPacket::parse(wire.as_mut_slice()).expect("packet with 8-byte payload must parse");
        for b in pkt.payload_mut() {
            *b ^= 0xFF;
        }
        assert_eq!(pkt.payload(), &[0u8; 8]);
    }

    #[test]
    fn short_rtp_rejected() {
        assert_eq!(
            RtpPacket::parse(&[0u8; 4][..]),
            Err(WireError::Truncated { need: 12, got: 4 })
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = header().emit(b"x");
        wire[0] = 1 << 6;
        assert_eq!(
            RtpPacket::parse(wire.as_slice()),
            Err(WireError::BadVersion(1))
        );
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader {
            src_port: 5004,
            dst_port: 5006,
            length: 0, // filled by emit
        };
        let wire = h.emit(b"datagram");
        let (parsed, payload) = UdpHeader::parse(&wire).expect("emitted UDP datagram must parse");
        assert_eq!(parsed.src_port, 5004);
        assert_eq!(parsed.dst_port, 5006);
        assert_eq!(parsed.length as usize, 8 + 8);
        assert_eq!(payload, b"datagram");
    }

    #[test]
    fn udp_truncation_detected() {
        let wire = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 0,
        }
        .emit(b"abcdef");
        assert!(UdpHeader::parse(&wire[..wire.len() - 2]).is_err());
        assert!(UdpHeader::parse(&wire[..4]).is_err());
    }

    #[test]
    fn overhead_constant_matches_headers() {
        assert_eq!(UDP_IP_OVERHEAD, 8 + 20);
    }

    #[test]
    fn udp_length_below_header_is_rejected_not_a_panic() {
        // A hostile datagram advertising length < 8 used to invert the
        // payload slice bounds; it must surface as a typed error.
        let mut wire = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 0,
        }
        .emit(b"payload");
        wire[4] = 0;
        wire[5] = 3; // length field = 3 < 8
        assert_eq!(UdpHeader::parse(&wire), Err(WireError::BadLength(3)));
    }

    #[test]
    fn fragment_header_roundtrip() {
        let h = FragmentHeader::new(123_456, 3, 9);
        let mut wire = h.emit().to_vec();
        wire.extend_from_slice(b"fragment body");
        let (parsed, body) =
            FragmentHeader::parse(&wire).expect("emitted fragment header must parse");
        assert_eq!(parsed, h);
        assert_eq!(body, b"fragment body");
    }

    #[test]
    fn fragment_header_rejects_short_buffers() {
        for n in 0..FRAG_HEADER_LEN {
            assert_eq!(
                FragmentHeader::parse(&vec![0u8; n]),
                Err(WireError::Truncated {
                    need: FRAG_HEADER_LEN,
                    got: n
                })
            );
        }
    }

    #[test]
    fn fragment_header_rejects_impossible_geometry() {
        // total == 0 (all-zero bytes) — the classic corrupted-header shape.
        assert_eq!(
            FragmentHeader::parse(&[0u8; 8]),
            Err(WireError::BadFragment { frag: 0, total: 0 })
        );
        // frag >= total.
        let wire = FragmentHeader::new(7, 5, 5).emit();
        assert_eq!(
            FragmentHeader::parse(&wire),
            Err(WireError::BadFragment { frag: 5, total: 5 })
        );
        let msg = FragmentHeader::parse(&wire).unwrap_err().to_string();
        assert!(msg.contains("fragment 5 of 5"), "{msg}");
    }

    #[test]
    fn fountain_header_roundtrip() {
        let h = FountainHeader::new(3, 77, 12, 1200, 12 * 1200 - 5);
        let mut wire = h.emit().to_vec();
        wire.extend_from_slice(b"coded symbol payload");
        let (parsed, body) =
            FountainHeader::parse(&wire).expect("emitted fountain header must parse");
        assert_eq!(parsed, h);
        assert_eq!(body, b"coded symbol payload");
    }

    #[test]
    fn fountain_header_rejects_short_buffers() {
        for n in 0..FOUNTAIN_HEADER_LEN {
            assert_eq!(
                FountainHeader::parse(&vec![0u8; n]),
                Err(WireError::Truncated {
                    need: FOUNTAIN_HEADER_LEN,
                    got: n
                })
            );
        }
    }

    #[test]
    fn fountain_header_rejects_impossible_geometry() {
        // All-zero bytes: k == 0.
        assert_eq!(
            FountainHeader::parse(&[0u8; FOUNTAIN_HEADER_LEN]),
            Err(WireError::BadFountain {
                k: 0,
                symbol_len: 0,
                block_len: 0
            })
        );
        // symbol_len == 0 with plausible other fields.
        let wire = FountainHeader::new(0, 0, 4, 0, 100).emit();
        assert!(matches!(
            FountainHeader::parse(&wire),
            Err(WireError::BadFountain { symbol_len: 0, .. })
        ));
        // block_len too large for k symbols.
        let wire = FountainHeader::new(0, 0, 4, 100, 401).emit();
        assert!(matches!(
            FountainHeader::parse(&wire),
            Err(WireError::BadFountain { block_len: 401, .. })
        ));
        // block_len so small the last source symbol would be all pad.
        let wire = FountainHeader::new(0, 0, 4, 100, 300).emit();
        assert!(matches!(
            FountainHeader::parse(&wire),
            Err(WireError::BadFountain { block_len: 300, .. })
        ));
        // Boundary values are accepted: exactly full, and one into the
        // final symbol.
        assert!(FountainHeader::parse(&FountainHeader::new(0, 0, 4, 100, 400).emit()).is_ok());
        assert!(FountainHeader::parse(&FountainHeader::new(0, 0, 4, 100, 301).emit()).is_ok());
        let msg = FountainHeader::parse(&FountainHeader::new(0, 0, 4, 100, 401).emit())
            .unwrap_err()
            .to_string();
        assert!(msg.contains("k=4"), "{msg}");
    }
}
