//! Stochastic packet-loss channels.
//!
//! The experiment simulator transmits each packet through a loss channel;
//! the analytical side only sees the long-run packet success rate `p_s`.
//! Two channels are provided: i.i.d. Bernoulli losses (matching the
//! analysis exactly) and a two-state Gilbert–Elliott channel for bursty
//! losses, used by robustness experiments to probe where the i.i.d.
//! assumption in eq. (20) starts to bias the model.

use rand::Rng;

/// A channel that decides, per packet, whether it is delivered.
pub trait LossChannel {
    /// Returns `true` if the packet survives the channel.
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;

    /// Long-run packet success probability of this channel.
    fn success_rate(&self) -> f64;
}

/// Why a channel constructor rejected its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelError {
    /// A probability parameter was NaN or outside `[0, 1]`.
    BadProbability {
        /// Which parameter.
        what: &'static str,
        /// The offending value (possibly NaN).
        value: f64,
    },
    /// Both transition probabilities are zero: the chain never leaves its
    /// start state and the stationary distribution is undefined.
    DegenerateChain,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::BadProbability { what, value } => {
                write!(f, "{what} = {value} is not a probability in [0, 1]")
            }
            ChannelError::DegenerateChain => {
                write!(f, "p_gb + p_bg must be > 0 for an irreducible chain")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// `Ok(value)` iff `value` is a real probability. NaN fails `contains`
/// too, but is checked first so the error names it explicitly.
fn checked_prob(what: &'static str, value: f64) -> Result<f64, ChannelError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        return Err(ChannelError::BadProbability { what, value });
    }
    Ok(value)
}

/// Independent losses with fixed success probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliChannel {
    /// Probability a packet is delivered.
    pub p_success: f64,
}

impl BernoulliChannel {
    /// Build a channel, rejecting NaN and out-of-range probabilities with
    /// a descriptive error.
    pub fn try_new(p_success: f64) -> Result<Self, ChannelError> {
        Ok(BernoulliChannel {
            p_success: checked_prob("p_success", p_success)?,
        })
    }

    /// Build a channel; panics unless `p_success ∈ [0, 1]`. Thin wrapper
    /// over [`try_new`](Self::try_new) for trusted, hard-coded parameters.
    pub fn new(p_success: f64) -> Self {
        match Self::try_new(p_success) {
            Ok(ch) => ch,
            Err(e) => panic!("success probability must be in [0, 1]: {e}"),
        }
    }
}

impl LossChannel for BernoulliChannel {
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        rng.gen_bool(self.p_success)
    }

    fn success_rate(&self) -> f64 {
        self.p_success
    }
}

/// Two-state Markov (Gilbert–Elliott) channel: a Good state with high
/// delivery probability and a Bad state with low delivery probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottChannel {
    /// P(good → bad) per packet.
    pub p_gb: f64,
    /// P(bad → good) per packet.
    pub p_bg: f64,
    /// Delivery probability in the Good state.
    pub good_success: f64,
    /// Delivery probability in the Bad state.
    pub bad_success: f64,
    in_good: bool,
}

impl GilbertElliottChannel {
    /// Build a channel starting in the Good state, rejecting NaN and
    /// out-of-range parameters with a descriptive error.
    ///
    /// NaN transition probabilities are caught here by name: a NaN `p_gb`
    /// would otherwise defeat the `p_gb + p_bg > 0` irreducibility check
    /// (any comparison with NaN is false) and surface much later as a
    /// panic inside the per-packet Bernoulli draw.
    pub fn try_new(
        p_gb: f64,
        p_bg: f64,
        good_success: f64,
        bad_success: f64,
    ) -> Result<Self, ChannelError> {
        let p_gb = checked_prob("p_gb", p_gb)?;
        let p_bg = checked_prob("p_bg", p_bg)?;
        let good_success = checked_prob("good_success", good_success)?;
        let bad_success = checked_prob("bad_success", bad_success)?;
        if p_gb + p_bg <= 0.0 {
            return Err(ChannelError::DegenerateChain);
        }
        Ok(GilbertElliottChannel {
            p_gb,
            p_bg,
            good_success,
            bad_success,
            in_good: true,
        })
    }

    /// Build a channel starting in the Good state; panics on invalid
    /// parameters. Thin wrapper over [`try_new`](Self::try_new) for
    /// trusted, hard-coded parameters.
    pub fn new(p_gb: f64, p_bg: f64, good_success: f64, bad_success: f64) -> Self {
        match Self::try_new(p_gb, p_bg, good_success, bad_success) {
            Ok(ch) => ch,
            Err(e) => panic!("invalid Gilbert–Elliott parameters, must be in [0, 1]: {e}"),
        }
    }

    /// Stationary probability of being in the Good state.
    pub fn stationary_good(&self) -> f64 {
        self.p_bg / (self.p_gb + self.p_bg)
    }
}

impl LossChannel for GilbertElliottChannel {
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        // State transition first, then a delivery draw in the new state.
        let flip = if self.in_good { self.p_gb } else { self.p_bg };
        if rng.gen_bool(flip) {
            self.in_good = !self.in_good;
        }
        let p = if self.in_good {
            self.good_success
        } else {
            self.bad_success
        };
        rng.gen_bool(p)
    }

    fn success_rate(&self) -> f64 {
        let pg = self.stationary_good();
        pg * self.good_success + (1.0 - pg) * self.bad_success
    }
}

/// A [`LossChannel`] wrapper that counts delivered and lost packets on the
/// `net.channel.delivered` / `net.channel.lost` counters.
///
/// The wrapper consumes exactly the same RNG draws as the wrapped channel,
/// so metering never perturbs a seeded simulation.
#[derive(Debug)]
pub struct MeteredChannel<C: LossChannel> {
    inner: C,
    delivered: thrifty_telemetry::Counter,
    lost: thrifty_telemetry::Counter,
}

impl<C: LossChannel> MeteredChannel<C> {
    /// Wrap `inner`, acquiring counter handles from `metrics` once (the
    /// per-packet cost is a single relaxed atomic add; zero when the
    /// registry is disabled).
    pub fn new(inner: C, metrics: &thrifty_telemetry::MetricsRegistry) -> Self {
        MeteredChannel {
            inner,
            delivered: metrics.counter("net.channel.delivered"),
            lost: metrics.counter("net.channel.lost"),
        }
    }

    /// The wrapped channel.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: LossChannel> LossChannel for MeteredChannel<C> {
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let ok = self.inner.transmit(rng);
        if ok {
            self.delivered.inc();
        } else {
            self.lost.inc();
        }
        ok
    }

    fn success_rate(&self) -> f64 {
        self.inner.success_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_empirical_rate_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = BernoulliChannel::new(0.9);
        let n = 100_000;
        let delivered = (0..n).filter(|_| ch.transmit(&mut rng)).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.01, "rate={rate}");
        assert_eq!(ch.success_rate(), 0.9);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut perfect = BernoulliChannel::new(1.0);
        let mut broken = BernoulliChannel::new(0.0);
        for _ in 0..100 {
            assert!(perfect.transmit(&mut rng));
            assert!(!broken.transmit(&mut rng));
        }
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = GilbertElliottChannel::new(0.05, 0.2, 0.99, 0.5);
        let n = 200_000;
        let delivered = (0..n).filter(|_| ch.transmit(&mut rng)).count();
        let rate = delivered as f64 / n as f64;
        assert!(
            (rate - ch.success_rate()).abs() < 0.01,
            "empirical {rate} vs analytic {}",
            ch.success_rate()
        );
    }

    #[test]
    fn gilbert_elliott_stationary_distribution() {
        let ch = GilbertElliottChannel::new(0.1, 0.3, 1.0, 0.0);
        assert!((ch.stationary_good() - 0.75).abs() < 1e-12);
        assert!((ch.success_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Mean loss-run length must exceed the i.i.d. value for the same
        // overall rate.
        let mut rng = StdRng::seed_from_u64(4);
        let mut ge = GilbertElliottChannel::new(0.01, 0.1, 1.0, 0.2);
        let mut runs = Vec::new();
        let mut current = 0usize;
        for _ in 0..200_000 {
            if ge.transmit(&mut rng) {
                if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        let mean_run: f64 = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        let loss_rate = 1.0 - ge.success_rate();
        let iid_mean_run = 1.0 / (1.0 - loss_rate);
        assert!(
            mean_run > 1.5 * iid_mean_run,
            "mean_run={mean_run}, iid={iid_mean_run}"
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_rejected() {
        BernoulliChannel::new(1.5);
    }

    #[test]
    fn try_new_rejects_bad_probabilities_descriptively() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = BernoulliChannel::try_new(bad).expect_err("must reject");
            match err {
                ChannelError::BadProbability { what, .. } => assert_eq!(what, "p_success"),
                other => panic!("expected BadProbability, got {other:?}"),
            }
        }
        assert_eq!(
            BernoulliChannel::try_new(0.5).expect("valid probability").p_success,
            0.5
        );
    }

    #[test]
    fn gilbert_elliott_try_new_rejects_nan_transitions() {
        // NaN in a transition probability defeats every ordered comparison,
        // so it must be rejected by name before the irreducibility check.
        let err = GilbertElliottChannel::try_new(f64::NAN, 0.2, 0.9, 0.5)
            .expect_err("NaN p_gb must be rejected");
        match err {
            ChannelError::BadProbability { what, value } => {
                assert_eq!(what, "p_gb");
                assert!(value.is_nan());
            }
            other => panic!("expected BadProbability, got {other:?}"),
        }
        let err = GilbertElliottChannel::try_new(0.1, f64::NAN, 0.9, 0.5)
            .expect_err("NaN p_bg must be rejected");
        assert!(matches!(err, ChannelError::BadProbability { what: "p_bg", .. }));
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn gilbert_elliott_try_new_rejects_degenerate_chain() {
        assert_eq!(
            GilbertElliottChannel::try_new(0.0, 0.0, 1.0, 0.0),
            Err(ChannelError::DegenerateChain)
        );
        let ch = GilbertElliottChannel::try_new(0.1, 0.3, 0.95, 0.2)
            .expect("valid parameters must build");
        assert!((ch.stationary_good() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn gilbert_elliott_new_panics_on_nan() {
        GilbertElliottChannel::new(0.1, 0.2, f64::NAN, 0.5);
    }

    #[test]
    fn metered_channel_counts_without_perturbing_the_rng() {
        use thrifty_telemetry::MetricsRegistry;
        let metrics = MetricsRegistry::enabled();
        let n = 10_000;
        // Reference run: bare channel.
        let mut rng = StdRng::seed_from_u64(11);
        let mut bare = GilbertElliottChannel::new(0.05, 0.2, 0.99, 0.5);
        let reference: Vec<bool> = (0..n).map(|_| bare.transmit(&mut rng)).collect();
        // Metered run from the same seed must produce the same outcomes.
        let mut rng = StdRng::seed_from_u64(11);
        let ge = GilbertElliottChannel::new(0.05, 0.2, 0.99, 0.5);
        let mut metered = MeteredChannel::new(ge, &metrics);
        let observed: Vec<bool> = (0..n).map(|_| metered.transmit(&mut rng)).collect();
        assert_eq!(observed, reference);
        let snap = metrics.snapshot();
        let delivered = reference.iter().filter(|&&ok| ok).count() as u64;
        assert_eq!(snap.counter("net.channel.delivered"), delivered);
        assert_eq!(snap.counter("net.channel.lost"), n as u64 - delivered);
        assert_eq!(metered.success_rate(), metered.inner().success_rate());
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            /// Satellite check: for random valid Gilbert–Elliott transition
            /// matrices the empirical long-run delivery rate converges to
            /// the analytic `success_rate()` (stationary mixture of the
            /// per-state delivery probabilities).
            #[test]
            fn gilbert_elliott_empirical_rate_matches_analytic(
                p_gb in 0.05f64..0.5,
                p_bg in 0.05f64..0.5,
                good in 0.7f64..1.0,
                bad in 0.0f64..0.5,
                seed in 0u64..1_000,
            ) {
                let mut ch = GilbertElliottChannel::new(p_gb, p_bg, good, bad);
                let mut rng = StdRng::seed_from_u64(seed);
                // Burn in so the start-in-Good bias decays before measuring.
                for _ in 0..1_000 {
                    ch.transmit(&mut rng);
                }
                let n = 100_000;
                let delivered = (0..n).filter(|_| ch.transmit(&mut rng)).count();
                let empirical = delivered as f64 / n as f64;
                let analytic = ch.success_rate();
                // Transition probabilities ≥ 0.05 keep the mixing time short,
                // so 100k draws put the MC error well inside 0.025.
                prop_assert!(
                    (empirical - analytic).abs() < 0.025,
                    "empirical {} vs analytic {} (p_gb={}, p_bg={}, good={}, bad={})",
                    empirical, analytic, p_gb, p_bg, good, bad
                );
            }
        }
    }
}
