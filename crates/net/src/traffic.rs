//! Traffic analysis and the padding countermeasure (paper Section 3).
//!
//! The threat model notes: "The eavesdropper may be able to distinguish
//! packets as belonging to either I-frames or P-frames based on their size
//! or other characteristics. While the sender can obfuscate these features
//! by using techniques such as padding the payload, we do not consider
//! these possibilities in this work." We build both sides of that sentence:
//!
//! * [`SizeClassifier`] — the eavesdropper's attack: a two-means clustering
//!   of observed payload sizes that labels packets as I-like (large,
//!   MTU-sized fragments) or P-like (small). On unpadded traffic this is
//!   nearly perfect, which matters because an eavesdropper who can find the
//!   I-frame packets knows *which* packets were worth encrypting.
//! * [`PaddingPolicy`] — the countermeasure: pad payloads so sizes stop
//!   leaking the frame class, at a quantified airtime/energy overhead.

/// Which size cluster a packet falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// The large-payload cluster (I-frame fragments in an unpadded flow).
    Large,
    /// The small-payload cluster (P-frame packets in an unpadded flow).
    Small,
}

/// A two-means (Lloyd) classifier over payload sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeClassifier {
    /// Centroid of the small cluster, bytes.
    pub small_centroid: f64,
    /// Centroid of the large cluster, bytes.
    pub large_centroid: f64,
    /// Decision boundary (midpoint of the centroids).
    pub threshold: f64,
}

impl SizeClassifier {
    /// Fit from observed payload sizes with 2-means.
    ///
    /// Returns `None` when fewer than two distinct sizes exist (nothing to
    /// separate — exactly what good padding achieves).
    pub fn fit(sizes: &[usize]) -> Option<SizeClassifier> {
        if sizes.len() < 2 {
            return None;
        }
        let min = *sizes.iter().min().expect("nonempty") as f64;
        let max = *sizes.iter().max().expect("nonempty") as f64;
        if max - min < 1.0 {
            return None;
        }
        let mut c_small = min;
        let mut c_large = max;
        for _ in 0..100 {
            let mid = 0.5 * (c_small + c_large);
            let (mut s_sum, mut s_n, mut l_sum, mut l_n) = (0.0, 0usize, 0.0, 0usize);
            for &b in sizes {
                if (b as f64) < mid {
                    s_sum += b as f64;
                    s_n += 1;
                } else {
                    l_sum += b as f64;
                    l_n += 1;
                }
            }
            if s_n == 0 || l_n == 0 {
                return None; // degenerate: one cluster
            }
            let new_small = s_sum / s_n as f64;
            let new_large = l_sum / l_n as f64;
            let moved = (new_small - c_small).abs() + (new_large - c_large).abs();
            c_small = new_small;
            c_large = new_large;
            if moved < 1e-9 {
                break;
            }
        }
        Some(SizeClassifier {
            small_centroid: c_small,
            large_centroid: c_large,
            threshold: 0.5 * (c_small + c_large),
        })
    }

    /// Classify one payload size.
    pub fn classify(&self, bytes: usize) -> SizeClass {
        if (bytes as f64) >= self.threshold {
            SizeClass::Large
        } else {
            SizeClass::Small
        }
    }

    /// Fraction of labelled samples classified correctly, where `true`
    /// means the ground truth is the Large class.
    pub fn accuracy(&self, labelled: &[(usize, bool)]) -> f64 {
        if labelled.is_empty() {
            return 0.0;
        }
        let correct = labelled
            .iter()
            .filter(|&&(bytes, is_large)| (self.classify(bytes) == SizeClass::Large) == is_large)
            .count();
        correct as f64 / labelled.len() as f64
    }

    /// Separation quality: distance between centroids relative to the MTU —
    /// near zero means sizes no longer leak anything.
    pub fn separation(&self, mtu: usize) -> f64 {
        (self.large_centroid - self.small_centroid) / mtu as f64
    }
}

/// How the sender pads payloads before transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingPolicy {
    /// No padding: sizes leak the frame class (the paper's setting).
    None,
    /// Pad every payload to the MTU: perfect size hiding, maximum overhead.
    ToMtu,
    /// Pad up to the next multiple of `quantum` bytes: coarser size leak,
    /// bounded overhead.
    ToMultiple(usize),
}

impl PaddingPolicy {
    /// Size on the wire for a payload of `bytes`, respecting the MTU cap.
    pub fn padded_size(&self, bytes: usize, mtu: usize) -> usize {
        match *self {
            PaddingPolicy::None => bytes,
            PaddingPolicy::ToMtu => mtu,
            PaddingPolicy::ToMultiple(quantum) => {
                assert!(quantum > 0, "quantum must be positive");
                (bytes.div_ceil(quantum) * quantum).min(mtu).max(bytes)
            }
        }
    }

    /// Relative byte overhead of padding a whole packet trace.
    pub fn overhead(&self, sizes: &[usize], mtu: usize) -> f64 {
        let raw: usize = sizes.iter().sum();
        if raw == 0 {
            return 0.0;
        }
        let padded: usize = sizes.iter().map(|&b| self.padded_size(b, mtu)).sum();
        padded as f64 / raw as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic unpadded trace: MTU-sized I fragments + small P packets.
    fn trace() -> Vec<(usize, bool)> {
        let mut t = Vec::new();
        for i in 0..300 {
            if i % 30 < 10 {
                t.push((1460, true)); // I fragment
            } else {
                t.push((120 + (i % 7) * 30, false)); // P packet
            }
        }
        t
    }

    #[test]
    fn classifier_is_near_perfect_on_unpadded_traffic() {
        let labelled = trace();
        let sizes: Vec<usize> = labelled.iter().map(|&(b, _)| b).collect();
        let c = SizeClassifier::fit(&sizes).expect("two clear clusters");
        assert!(c.accuracy(&labelled) > 0.99);
        assert!(c.separation(1460) > 0.5);
        assert!(c.small_centroid < 400.0);
        assert!(c.large_centroid > 1400.0);
    }

    #[test]
    fn mtu_padding_defeats_the_classifier() {
        let labelled = trace();
        let padded: Vec<usize> = labelled
            .iter()
            .map(|&(b, _)| PaddingPolicy::ToMtu.padded_size(b, 1460))
            .collect();
        // All sizes identical: the classifier cannot even be fitted.
        assert!(SizeClassifier::fit(&padded).is_none());
    }

    #[test]
    fn quantized_padding_trades_leakage_for_overhead() {
        let labelled = trace();
        let sizes: Vec<usize> = labelled.iter().map(|&(b, _)| b).collect();
        let none = PaddingPolicy::None.overhead(&sizes, 1460);
        let coarse = PaddingPolicy::ToMultiple(512).overhead(&sizes, 1460);
        let full = PaddingPolicy::ToMtu.overhead(&sizes, 1460);
        assert_eq!(none, 0.0);
        assert!(coarse > 0.0 && coarse < full, "none {none} coarse {coarse} full {full}");
        // Quantised sizes still leak (two quantised clusters), but less
        // separably than raw sizes.
        let quantized: Vec<(usize, bool)> = labelled
            .iter()
            .map(|&(b, l)| (PaddingPolicy::ToMultiple(512).padded_size(b, 1460), l))
            .collect();
        let qsizes: Vec<usize> = quantized.iter().map(|&(b, _)| b).collect();
        let c = SizeClassifier::fit(&qsizes).expect("still two clusters at 512-quantum");
        let raw_c =
            SizeClassifier::fit(&sizes).expect("raw clusters");
        assert!(c.separation(1460) < raw_c.separation(1460));
    }

    #[test]
    fn padded_size_respects_bounds() {
        let p = PaddingPolicy::ToMultiple(512);
        assert_eq!(p.padded_size(1, 1460), 512);
        assert_eq!(p.padded_size(512, 1460), 512);
        assert_eq!(p.padded_size(513, 1460), 1024);
        // Never exceeds the MTU, never shrinks a payload.
        assert_eq!(p.padded_size(1300, 1460), 1460);
        assert_eq!(p.padded_size(1460, 1460), 1460);
        assert_eq!(PaddingPolicy::None.padded_size(77, 1460), 77);
        assert_eq!(PaddingPolicy::ToMtu.padded_size(1, 1460), 1460);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(SizeClassifier::fit(&[]).is_none());
        assert!(SizeClassifier::fit(&[100]).is_none());
        assert!(SizeClassifier::fit(&[100; 50]).is_none());
    }

    #[test]
    fn accuracy_of_empty_sample_is_zero() {
        let c = SizeClassifier {
            small_centroid: 100.0,
            large_centroid: 1000.0,
            threshold: 550.0,
        };
        assert_eq!(c.accuracy(&[]), 0.0);
    }
}
