//! # thrifty-net
//!
//! Network substrate for the CoNEXT 2013 reproduction: the pieces the paper
//! obtained from a live 802.11g WLAN and `tcpdump`, rebuilt as models and
//! wire formats.
//!
//! * [`dcf`] — an IEEE 802.11 DCF fixed-point model (Bianchi 2000) standing
//!   in for the paper's reference \[13\] (Baras et al.), itself a fixed-point
//!   MAC/PHY model. It produces the two quantities Section 4 consumes: the
//!   packet success rate `p_s` and the backoff rate `λ_b`, plus 802.11g
//!   airtime arithmetic for the transmission time `T_t`.
//! * [`channel`] — stochastic packet-loss channels (Bernoulli and
//!   Gilbert–Elliott) used by the experiment simulator.
//! * [`wire`] — RTP and UDP wire formats in the smoltcp style (typed views
//!   over byte buffers). The RTP **marker bit signals encryption** exactly
//!   as in the paper's Section 5.
//! * [`tcp`] — a simplified TCP segment format (with the paper's §6.4
//!   marker option) and a retransmission latency model for the HTTP/TCP
//!   experiments (Figures 12–15).
//! * [`capture`] — the eavesdropper's `tcpdump` substitute: a passive tap
//!   that records every packet crossing the channel.
//! * [`traffic`] — the Section 3 traffic-analysis attack (size-based I/P
//!   classification) and the padding countermeasure the paper mentions but
//!   leaves out of scope.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod capture;
pub mod channel;
pub mod dcf;
pub mod tcp;
pub mod traffic;
pub mod wire;

pub use capture::{CapturedPacket, PacketCapture};
pub use channel::{BernoulliChannel, ChannelError, GilbertElliottChannel, LossChannel};
pub use dcf::{DcfModel, DcfSolution, PhyParams};
pub use tcp::{TcpLatencyModel, TcpSegment};
pub use traffic::{PaddingPolicy, SizeClass, SizeClassifier};
pub use wire::{
    FountainHeader, FragmentHeader, RtpHeader, RtpPacket, UdpHeader, WireError,
    FOUNTAIN_HEADER_LEN, FRAG_HEADER_LEN, RTP_HEADER_LEN, UDP_IP_OVERHEAD,
};
