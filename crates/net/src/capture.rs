//! Passive packet capture — the eavesdropper's `tcpdump` substitute.
//!
//! The paper's threat model (Section 3): an eavesdropper on the same open
//! WiFi network overhears every transmission with `tcpdump` on a rooted
//! phone, can read unencrypted payloads, but must treat encrypted packets
//! (identified by the marker bit) as erasures. A [`PacketCapture`] is a tap
//! installed on the channel that records exactly that view.

/// One packet as seen by the eavesdropper's sniffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapturedPacket {
    /// Wire sequence number.
    pub seq: usize,
    /// Absolute video frame number the packet carries (inferred by the
    /// eavesdropper from RTP timestamps/sizes; we record ground truth).
    pub frame_index: usize,
    /// Payload length, bytes.
    pub bytes: usize,
    /// True if the marker bit flagged the payload as encrypted.
    pub encrypted: bool,
    /// Capture timestamp, seconds since stream start.
    pub time_s: f64,
}

/// An append-only capture log with summary queries.
#[derive(Debug, Clone, Default)]
pub struct PacketCapture {
    packets: Vec<CapturedPacket>,
}

impl PacketCapture {
    /// Create an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one overheard packet.
    pub fn record(&mut self, packet: CapturedPacket) {
        self.packets.push(packet);
    }

    /// All captured packets, in capture order.
    pub fn packets(&self) -> &[CapturedPacket] {
        &self.packets
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Packets the eavesdropper can actually use (not encrypted).
    pub fn usable(&self) -> impl Iterator<Item = &CapturedPacket> {
        self.packets.iter().filter(|p| !p.encrypted)
    }

    /// Fraction of captured packets that were encrypted — the eavesdropper's
    /// empirical estimate of the sender's `q^(P)`.
    pub fn encrypted_fraction(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets.iter().filter(|p| p.encrypted).count() as f64 / self.packets.len() as f64
    }

    /// Set of frame indices for which *every* captured packet is usable —
    /// i.e. frames the eavesdropper might reconstruct (ignoring packets it
    /// never overheard; callers cross-check counts against the stream).
    pub fn fully_clear_frames(&self) -> std::collections::BTreeSet<usize> {
        use std::collections::{BTreeMap, BTreeSet};
        let mut clear: BTreeMap<usize, bool> = BTreeMap::new();
        for p in &self.packets {
            let e = clear.entry(p.frame_index).or_insert(true);
            *e &= !p.encrypted;
        }
        clear
            .into_iter()
            .filter_map(|(f, ok)| ok.then_some(f))
            .collect::<BTreeSet<_>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: usize, frame: usize, encrypted: bool) -> CapturedPacket {
        CapturedPacket {
            seq,
            frame_index: frame,
            bytes: 1000,
            encrypted,
            time_s: seq as f64 * 1e-3,
        }
    }

    #[test]
    fn empty_capture() {
        let c = PacketCapture::new();
        assert!(c.is_empty());
        assert_eq!(c.encrypted_fraction(), 0.0);
        assert!(c.fully_clear_frames().is_empty());
    }

    #[test]
    fn usable_filters_encrypted() {
        let mut c = PacketCapture::new();
        c.record(pkt(0, 0, true));
        c.record(pkt(1, 0, false));
        c.record(pkt(2, 1, false));
        assert_eq!(c.len(), 3);
        assert_eq!(c.usable().count(), 2);
        assert!((c.encrypted_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fully_clear_frames_requires_all_packets_clear() {
        let mut c = PacketCapture::new();
        // Frame 0: one of two packets encrypted → not clear.
        c.record(pkt(0, 0, true));
        c.record(pkt(1, 0, false));
        // Frame 1: all clear.
        c.record(pkt(2, 1, false));
        c.record(pkt(3, 1, false));
        // Frame 2: all encrypted.
        c.record(pkt(4, 2, true));
        let clear = c.fully_clear_frames();
        assert!(!clear.contains(&0));
        assert!(clear.contains(&1));
        assert!(!clear.contains(&2));
    }

    #[test]
    fn capture_preserves_order_and_fields() {
        let mut c = PacketCapture::new();
        for i in 0..10 {
            c.record(pkt(i, i / 3, i % 2 == 0));
        }
        let seqs: Vec<usize> = c.packets().iter().map(|p| p.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert!((c.packets()[4].time_s - 4e-3).abs() < 1e-12);
    }
}
