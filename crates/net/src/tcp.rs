//! Simplified TCP for the HTTP/TCP experiments (paper Section 6.4).
//!
//! Two pieces:
//!
//! * [`TcpSegment`] — a real TCP header encoding carrying the paper's
//!   encryption **marker bit as a TCP option** ("A Marker bit is used again
//!   (in the option header) to indicate whether or not a packet is
//!   encrypted").
//! * [`TcpLatencyModel`] — a loss/retransmission latency model: lost
//!   segments are retransmitted after an exponentially backed-off RTO, and
//!   because of cumulative ACKs a loss stalls the in-order delivery of the
//!   segments behind it. This reproduces the Figure 12–13 observation that
//!   TCP latencies are noticeably higher than UDP's but follow the same
//!   policy ordering.

use rand::Rng;
use thrifty_recover::RtoEstimator;

/// TCP option kind we use for the encryption marker (experimental range).
pub const MARKER_OPTION_KIND: u8 = 0xFE;

/// Errors from TCP segment parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Buffer shorter than the advertised header.
    Truncated {
        /// Required bytes.
        need: usize,
        /// Available bytes.
        got: usize,
    },
    /// data_offset field below the 5-word minimum.
    BadDataOffset(u8),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Truncated { need, got } => {
                write!(f, "truncated TCP segment: need {need}, got {got}")
            }
            TcpError::BadDataOffset(v) => write!(f, "invalid TCP data offset {v}"),
        }
    }
}

impl std::error::Error for TcpError {}

/// A decoded (subset of a) TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number (byte offset of the first payload byte).
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Encryption marker from the option header.
    pub encrypted_marker: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Serialise with a 4-byte option block carrying the marker.
    pub fn emit(&self) -> Vec<u8> {
        // 20 fixed + 4 option bytes = 24 ⇒ data offset 6 words.
        let mut out = Vec::with_capacity(24 + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(6 << 4); // data offset = 6 words, reserved = 0
        out.push(0x18); // PSH|ACK
        out.extend_from_slice(&u16::to_be_bytes(65_535)); // window
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent (unused)
        // Option: kind, length=3, marker value, then 1 byte padding (NOP=1).
        out.push(MARKER_OPTION_KIND);
        out.push(3);
        out.push(self.encrypted_marker as u8);
        out.push(1);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a segment produced by [`emit`](Self::emit) (or any segment with
    /// a ≥5-word header; unknown options are skipped).
    pub fn parse(buffer: &[u8]) -> Result<TcpSegment, TcpError> {
        if buffer.len() < 20 {
            return Err(TcpError::Truncated {
                need: 20,
                got: buffer.len(),
            });
        }
        let data_offset_words = buffer[12] >> 4;
        if data_offset_words < 5 {
            return Err(TcpError::BadDataOffset(data_offset_words));
        }
        let header_len = data_offset_words as usize * 4;
        if buffer.len() < header_len {
            return Err(TcpError::Truncated {
                need: header_len,
                got: buffer.len(),
            });
        }
        // Walk the options looking for the marker.
        let mut encrypted_marker = false;
        let mut i = 20;
        while i < header_len {
            match buffer[i] {
                0 => break,             // end of options
                1 => i += 1,            // NOP
                kind => {
                    if i + 1 >= header_len {
                        break;
                    }
                    let len = buffer[i + 1] as usize;
                    if len < 2 || i + len > header_len {
                        break;
                    }
                    if kind == MARKER_OPTION_KIND && len >= 3 {
                        encrypted_marker = buffer[i + 2] != 0;
                    }
                    i += len;
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([buffer[0], buffer[1]]),
            dst_port: u16::from_be_bytes([buffer[2], buffer[3]]),
            seq: u32::from_be_bytes([buffer[4], buffer[5], buffer[6], buffer[7]]),
            ack: u32::from_be_bytes([buffer[8], buffer[9], buffer[10], buffer[11]]),
            encrypted_marker,
            payload: buffer[header_len..].to_vec(),
        })
    }
}

/// Why a [`TcpLatencyModel`] was rejected by
/// [`try_new`](TcpLatencyModel::try_new).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TcpModelError {
    /// Loss probability was NaN or outside `[0, 1)`.
    BadLossProbability(f64),
    /// RTO was NaN, infinite, zero or negative.
    BadRto(f64),
}

impl std::fmt::Display for TcpModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpModelError::BadLossProbability(v) => {
                write!(f, "segment loss probability {v} must be in [0, 1)")
            }
            TcpModelError::BadRto(v) => write!(f, "RTO {v} must be finite and > 0"),
        }
    }
}

impl std::error::Error for TcpModelError {}

/// Loss/retransmission latency model for a TCP transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpLatencyModel {
    /// Probability a segment transmission is lost (1 − p_s).
    pub loss_prob: f64,
    /// Base retransmission timeout, seconds.
    pub rto_s: f64,
    /// Maximum number of RTO doublings.
    pub max_backoff: u32,
}

impl TcpLatencyModel {
    /// Build a model, rejecting NaN/out-of-range parameters with a typed
    /// error instead of a panic.
    pub fn try_new(loss_prob: f64, rto_s: f64) -> Result<Self, TcpModelError> {
        if !loss_prob.is_finite() || !(0.0..1.0).contains(&loss_prob) {
            return Err(TcpModelError::BadLossProbability(loss_prob));
        }
        if !rto_s.is_finite() || rto_s <= 0.0 {
            return Err(TcpModelError::BadRto(rto_s));
        }
        Ok(TcpLatencyModel {
            loss_prob,
            rto_s,
            max_backoff: 6,
        })
    }

    /// Build a model; panics on invalid parameters (prefer
    /// [`try_new`](Self::try_new) for untrusted input).
    pub fn new(loss_prob: f64, rto_s: f64) -> Self {
        match Self::try_new(loss_prob, rto_s) {
            Ok(model) => model,
            Err(e) => panic!("invalid TcpLatencyModel: {e}"),
        }
    }

    /// Expected extra delay per segment due to retransmissions:
    /// `Σ_k P(K = k) · Σ_{i<k} RTO·2^i` where `K ~ Geometric(loss)` is the
    /// number of lost attempts (backoff capped at `max_backoff` doublings).
    pub fn expected_extra_delay_s(&self) -> f64 {
        let q = self.loss_prob;
        let p = 1.0 - q;
        let mut expected = 0.0;
        // Truncate the series when the tail probability is negligible.
        let mut tail = 1.0;
        for k in 1..200u32 {
            tail *= q;
            let prob_k = tail * p; // exactly k losses then a success
            let mut wait = 0.0;
            for i in 0..k {
                wait += self.rto_s * 2f64.powi(i.min(self.max_backoff) as i32);
            }
            expected += prob_k * wait;
            if tail < 1e-15 {
                break;
            }
        }
        expected
    }

    /// Sample the extra delay of a single segment.
    pub fn sample_extra_delay_s<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut delay = 0.0;
        let mut attempt = 0u32;
        while rng.gen_bool(self.loss_prob) {
            delay += self.rto_s * 2f64.powi(attempt.min(self.max_backoff) as i32);
            attempt += 1;
            if attempt > 50 {
                break; // pathological RNG stream; cap for safety
            }
        }
        delay
    }

    /// Sample the extra delay of a single segment with an **adaptive** RTO:
    /// each wait is whatever `estimator` currently believes, every loss
    /// feeds the estimator a timeout (doubling it, up to its cap), and a
    /// **first-attempt** delivery feeds back `rtt_s` as an RTT sample
    /// (Karn's rule: deliveries that needed a retransmission are skipped).
    ///
    /// The loss draws mirror [`sample_extra_delay_s`](Self::sample_extra_delay_s)
    /// draw-for-draw, so a fixed-vs-adaptive comparison can replay the exact
    /// same loss pattern from the same seed.
    pub fn sample_extra_delay_adaptive_s<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        estimator: &mut RtoEstimator,
        rtt_s: f64,
    ) -> f64 {
        let mut delay = 0.0;
        let mut attempt = 0u32;
        while rng.gen_bool(self.loss_prob) {
            delay += estimator.rto_s();
            estimator.on_timeout();
            attempt += 1;
            if attempt > 50 {
                break; // pathological RNG stream; cap for safety
            }
        }
        if attempt == 0 {
            estimator.on_rtt_sample(rtt_s);
        }
        delay
    }
}

/// A [`TcpLatencyModel`] wrapper that meters retransmission behaviour:
/// every lost attempt bumps the `net.tcp.retransmissions` counter and each
/// segment's total extra delay is recorded as a
/// [`Stage::TcpRetransmit`](thrifty_telemetry::Stage::TcpRetransmit) span.
///
/// [`sample_extra_delay_s`](Self::sample_extra_delay_s) consumes **exactly**
/// the RNG draw sequence of the unmetered
/// [`TcpLatencyModel::sample_extra_delay_s`], so switching metering on never
/// changes a seeded experiment's figures.
#[derive(Debug, Clone)]
pub struct MeteredTcp<'a> {
    model: TcpLatencyModel,
    metrics: &'a thrifty_telemetry::MetricsRegistry,
    retransmissions: thrifty_telemetry::Counter,
}

impl<'a> MeteredTcp<'a> {
    /// Wrap `model`, reporting into `metrics` (the counter handle is
    /// acquired once here, not per segment).
    pub fn new(model: TcpLatencyModel, metrics: &'a thrifty_telemetry::MetricsRegistry) -> Self {
        MeteredTcp {
            model,
            metrics,
            retransmissions: metrics.counter("net.tcp.retransmissions"),
        }
    }

    /// The wrapped latency model.
    pub fn model(&self) -> &TcpLatencyModel {
        &self.model
    }

    /// Sample one segment's extra delay, mirroring
    /// [`TcpLatencyModel::sample_extra_delay_s`] draw-for-draw while
    /// counting retransmissions and recording the span.
    pub fn sample_extra_delay_s<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut delay = 0.0;
        let mut attempt = 0u32;
        while rng.gen_bool(self.model.loss_prob) {
            delay += self.model.rto_s * 2f64.powi(attempt.min(self.model.max_backoff) as i32);
            attempt += 1;
            self.retransmissions.inc();
            if attempt > 50 {
                break; // pathological RNG stream; cap for safety
            }
        }
        self.metrics
            .record_span(thrifty_telemetry::Stage::TcpRetransmit, delay);
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn segment(marker: bool) -> TcpSegment {
        TcpSegment {
            src_port: 80,
            dst_port: 54321,
            seq: 1_000_000,
            ack: 555,
            encrypted_marker: marker,
            payload: b"http chunk".to_vec(),
        }
    }

    #[test]
    fn segment_roundtrip_with_marker() {
        for marker in [false, true] {
            let s = segment(marker);
            let wire = s.emit();
            let parsed = TcpSegment::parse(&wire).unwrap();
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn header_length_is_24_bytes() {
        let wire = segment(true).emit();
        assert_eq!(wire.len(), 24 + 10);
        assert_eq!(wire[12] >> 4, 6);
    }

    #[test]
    fn parser_skips_unknown_options() {
        // Hand-build a segment with a NOP and an unknown option before ours.
        let mut wire = segment(true).emit();
        // Grow header: rewrite options area as NOP, unknown(kind 9, len 2), marker.
        // Simpler: verify our parser handles NOP already present (last byte).
        let parsed = TcpSegment::parse(&wire).unwrap();
        assert!(parsed.encrypted_marker);
        // Corrupt the marker option kind: marker should default to false.
        wire[20] = 0x42;
        let parsed = TcpSegment::parse(&wire).unwrap();
        assert!(!parsed.encrypted_marker);
    }

    #[test]
    fn truncated_and_malformed_rejected() {
        assert!(TcpSegment::parse(&[0u8; 10]).is_err());
        let mut wire = segment(false).emit();
        wire[12] = 4 << 4; // data offset below minimum
        assert_eq!(TcpSegment::parse(&wire), Err(TcpError::BadDataOffset(4)));
    }

    #[test]
    fn no_loss_means_no_extra_delay() {
        let m = TcpLatencyModel::new(0.0, 0.2);
        assert_eq!(m.expected_extra_delay_s(), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample_extra_delay_s(&mut rng), 0.0);
    }

    #[test]
    fn expected_delay_matches_monte_carlo() {
        let m = TcpLatencyModel::new(0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_extra_delay_s(&mut rng))
            .sum::<f64>()
            / n as f64;
        let analytic = m.expected_extra_delay_s();
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "MC {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn delay_grows_with_loss() {
        let low = TcpLatencyModel::new(0.05, 0.1).expected_extra_delay_s();
        let high = TcpLatencyModel::new(0.3, 0.1).expected_extra_delay_s();
        assert!(high > low);
    }

    /// Differential test of `expected_extra_delay_s` against a Monte-Carlo
    /// mean of `sample_extra_delay_s`, with `max_backoff` tightened so the
    /// RTO-doubling **cap branch** (`attempt.min(max_backoff)`) is hit on
    /// most samples — at 50% loss, one in eight segments sees three or more
    /// retransmissions and saturates a cap of 2.
    #[test]
    fn expected_delay_matches_monte_carlo_at_backoff_cap() {
        let mut m = TcpLatencyModel::new(0.5, 0.05);
        m.max_backoff = 2;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 150_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_extra_delay_s(&mut rng))
            .sum::<f64>()
            / n as f64;
        let analytic = m.expected_extra_delay_s();
        // With the cap at 2 the per-segment delay variance is modest; 150k
        // draws bound the relative MC error far below the 3% gate.
        assert!(
            (mean - analytic).abs() / analytic < 0.03,
            "MC {mean} vs analytic {analytic}"
        );
        // Sanity: the cap actually binds — the uncapped model must expect
        // strictly more delay at the same loss rate.
        let uncapped = TcpLatencyModel::new(0.5, 0.05).expected_extra_delay_s();
        assert!(uncapped > analytic);
    }

    #[test]
    fn try_new_rejects_hostile_parameters() {
        assert!(matches!(
            TcpLatencyModel::try_new(f64::NAN, 0.1),
            Err(TcpModelError::BadLossProbability(v)) if v.is_nan()
        ));
        assert_eq!(
            TcpLatencyModel::try_new(1.0, 0.1),
            Err(TcpModelError::BadLossProbability(1.0))
        );
        assert_eq!(
            TcpLatencyModel::try_new(-0.1, 0.1),
            Err(TcpModelError::BadLossProbability(-0.1))
        );
        assert!(matches!(
            TcpLatencyModel::try_new(0.1, f64::NAN),
            Err(TcpModelError::BadRto(v)) if v.is_nan()
        ));
        assert_eq!(
            TcpLatencyModel::try_new(0.1, f64::INFINITY),
            Err(TcpModelError::BadRto(f64::INFINITY))
        );
        assert_eq!(TcpLatencyModel::try_new(0.1, 0.0), Err(TcpModelError::BadRto(0.0)));
        assert_eq!(TcpLatencyModel::try_new(0.2, 0.1), Ok(TcpLatencyModel::new(0.2, 0.1)));
    }

    #[test]
    fn adaptive_sampling_preserves_draw_cadence() {
        use thrifty_recover::{RtoConfig, RtoEstimator};
        let m = TcpLatencyModel::new(0.4, 0.05);
        let mut rng_fixed = StdRng::seed_from_u64(7);
        let mut rng_adaptive = StdRng::seed_from_u64(7);
        let mut est = RtoEstimator::new(RtoConfig::default());
        for _ in 0..1000 {
            let _ = m.sample_extra_delay_s(&mut rng_fixed);
            let _ = m.sample_extra_delay_adaptive_s(&mut rng_adaptive, &mut est, 0.02);
        }
        // Both streams consumed the same number of draws, so they agree on
        // the next value.
        let next_fixed: f64 = rng_fixed.gen_range(0.0..1.0);
        let next_adaptive: f64 = rng_adaptive.gen_range(0.0..1.0);
        assert_eq!(next_fixed.to_bits(), next_adaptive.to_bits());
    }

    #[test]
    fn converged_adaptive_rto_stalls_less_than_pessimistic_fixed() {
        use thrifty_recover::{RtoConfig, RtoEstimator};
        // Fixed RTO of 250 ms on a path whose real RTT is 20 ms: the
        // adaptive estimator converges down while staying capped at the
        // fixed value, so its total stall is structurally no worse.
        let m = TcpLatencyModel::new(0.3, 0.25);
        let cfg = RtoConfig::try_new(0.25, 0.002, 0.25, 6).unwrap();
        let mut est = RtoEstimator::new(cfg);
        let mut rng_fixed = StdRng::seed_from_u64(11);
        let mut rng_adaptive = StdRng::seed_from_u64(11);
        let fixed: f64 = (0..5000).map(|_| m.sample_extra_delay_s(&mut rng_fixed)).sum();
        let adaptive: f64 = (0..5000)
            .map(|_| m.sample_extra_delay_adaptive_s(&mut rng_adaptive, &mut est, 0.02))
            .sum();
        assert!(adaptive < fixed, "adaptive {adaptive} vs fixed {fixed}");
    }

    #[test]
    fn metered_tcp_matches_unmetered_draw_for_draw() {
        use thrifty_telemetry::{MetricsRegistry, Stage};
        let model = TcpLatencyModel::new(0.3, 0.1);
        let n = 20_000;
        let mut rng = StdRng::seed_from_u64(9);
        let reference: Vec<f64> = (0..n).map(|_| model.sample_extra_delay_s(&mut rng)).collect();

        let metrics = MetricsRegistry::enabled();
        let metered = MeteredTcp::new(model, &metrics);
        let mut rng = StdRng::seed_from_u64(9);
        let observed: Vec<f64> = (0..n).map(|_| metered.sample_extra_delay_s(&mut rng)).collect();
        assert_eq!(observed, reference, "metering must not perturb the RNG");

        let snap = metrics.snapshot();
        let span = snap.span(Stage::TcpRetransmit).expect("span recorded");
        assert_eq!(span.count, n as u64);
        let total: f64 = reference.iter().sum();
        assert!((span.total_s - total).abs() < 1e-9);
        assert!(snap.counter("net.tcp.retransmissions") > 0);
        assert_eq!(metered.model(), &model);
    }
}
