//! Resync protocol: desyncs become bounded, measured recovery episodes.
//!
//! Two desync states threaten the receiver:
//!
//! * **Stale key** — the decryptor holds an out-of-date key, so every
//!   marked packet decrypts to garbage. Recovery is a bounded re-key
//!   handshake (`handshake_ticks` of protocol time) followed by decoder
//!   resync at the next I-frame, mirroring how a real player re-keys over
//!   the control channel and then waits for a random access point.
//! * **Lost I-frame** — the decoder lost its reference picture; no key
//!   exchange is needed, but prediction is broken until the next intact
//!   I-frame arrives.
//!
//! Time is an abstract monotone `u64` tick supplied by the caller (the
//! pipeline counts received packets, the frame-level analysis counts
//! frames), so the protocol is wall-clock-free and deterministic.
//!
//! An [`Episode`] closes at the first I-frame *after* the key is fresh;
//! an episode still open when the stream ends is reported separately in
//! [`RecoveryReport::open`] so "the storm outran the tape" is
//! distinguishable from "recovery is unbounded".

/// Which desync state an episode recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesyncKind {
    /// The receiver's session key went stale; a re-key handshake runs.
    StaleKey,
    /// The decoder lost an I-frame; it resyncs at the next intact one.
    LostIFrame,
}

impl DesyncKind {
    /// Human label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DesyncKind::StaleKey => "stale-key",
            DesyncKind::LostIFrame => "lost-I-frame",
        }
    }
}

/// One recovery episode: desync at `start`, fully recovered at `end`
/// (both in caller ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// What broke.
    pub kind: DesyncKind,
    /// Tick of the desync event.
    pub start: u64,
    /// Tick of the recovery point (first I-frame with a fresh key), or the
    /// last observed tick for a still-open episode in
    /// [`RecoveryReport::open`].
    pub end: u64,
}

impl Episode {
    /// Recovery time in ticks.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Everything a run's resync activity produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Closed episodes, in start order.
    pub episodes: Vec<Episode>,
    /// An episode the stream ended inside, if any (`end` = final tick, so
    /// `duration()` is the time spent desynced so far).
    pub open: Option<Episode>,
}

impl RecoveryReport {
    /// Closed-episode durations, in start order.
    pub fn durations(&self) -> Vec<u64> {
        self.episodes.iter().map(Episode::duration).collect()
    }

    /// The longest recovery time observed, counting a still-open episode's
    /// elapsed ticks (0 when nothing ever desynced).
    pub fn max_duration(&self) -> u64 {
        let closed = self.episodes.iter().map(Episode::duration).max().unwrap_or(0);
        closed.max(self.open.map(|e| e.duration()).unwrap_or(0))
    }

    /// True when every episode (including a still-open tail) recovered or
    /// has been desynced for at most `bound` ticks.
    pub fn bounded_by(&self, bound: u64) -> bool {
        self.max_duration() <= bound
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    InSync,
    Resyncing {
        kind: DesyncKind,
        since: u64,
        key_fresh_at: u64,
    },
}

/// The receiver-side resync state machine.
#[derive(Debug, Clone)]
pub struct ResyncProtocol {
    handshake_ticks: u64,
    state: State,
    episodes: Vec<Episode>,
    last_tick: u64,
}

impl ResyncProtocol {
    /// A protocol whose re-key handshake completes `handshake_ticks` after
    /// a stale-key desync is detected.
    pub fn new(handshake_ticks: u64) -> Self {
        ResyncProtocol {
            handshake_ticks,
            state: State::InSync,
            episodes: Vec::new(),
            last_tick: 0,
        }
    }

    /// Whether the receiver is currently inside a desync episode.
    pub fn is_resyncing(&self) -> bool {
        !matches!(self.state, State::InSync)
    }

    /// Whether decrypting with the session key is sound at `now`: true in
    /// sync, and true mid-episode once the re-key handshake has completed
    /// (a lost I-frame never invalidates the key).
    pub fn key_is_fresh(&self, now: u64) -> bool {
        match self.state {
            State::InSync => true,
            State::Resyncing { key_fresh_at, .. } => now >= key_fresh_at,
        }
    }

    /// Report a desync detected at tick `now`. Ignored while already
    /// resyncing: the episode in progress absorbs further faults, exactly
    /// as a player mid-re-key ignores additional garbage.
    pub fn on_desync(&mut self, kind: DesyncKind, now: u64) {
        self.last_tick = self.last_tick.max(now);
        if self.is_resyncing() {
            return;
        }
        let key_fresh_at = match kind {
            DesyncKind::StaleKey => now.saturating_add(self.handshake_ticks),
            DesyncKind::LostIFrame => now,
        };
        self.state = State::Resyncing {
            kind,
            since: now,
            key_fresh_at,
        };
    }

    /// An I-frame was observed at tick `now`. Closes the current episode
    /// iff the key is fresh again; otherwise the garbled I-frame cannot be
    /// the resync point and the episode continues to the next one.
    pub fn on_i_frame(&mut self, now: u64) {
        self.last_tick = self.last_tick.max(now);
        if let State::Resyncing { kind, since, key_fresh_at } = self.state {
            if now >= key_fresh_at {
                self.episodes.push(Episode {
                    kind,
                    start: since,
                    end: now,
                });
                self.state = State::InSync;
            }
        }
    }

    /// Advance the protocol clock without an event (e.g. per received
    /// packet), so a still-open episode's elapsed time is measured.
    pub fn on_tick(&mut self, now: u64) {
        self.last_tick = self.last_tick.max(now);
    }

    /// Closed episodes so far, in start order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// The final report: closed episodes plus the open tail, if the stream
    /// ended mid-episode.
    pub fn report(&self) -> RecoveryReport {
        let open = match self.state {
            State::InSync => None,
            State::Resyncing { kind, since, .. } => Some(Episode {
                kind,
                start: since,
                end: self.last_tick,
            }),
        };
        RecoveryReport {
            episodes: self.episodes.clone(),
            open,
        }
    }
}

/// Decoder-outage episodes implied by per-frame delivery flags: a damaged
/// I-frame (index divisible by `gop`) opens an outage that closes at the
/// next *intact* I-frame — prediction holds the GOP hostage to its
/// reference picture, so P-frame damage inside an otherwise-anchored GOP
/// is local and opens nothing. Ticks are frame indices. `gop == 0` yields
/// an empty report (no I-frame structure to resync on).
pub fn decoder_outage_episodes(frame_ok: &[bool], gop: usize) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    if gop == 0 {
        return report;
    }
    let mut open_since: Option<u64> = None;
    for (i, &ok) in frame_ok.iter().enumerate() {
        if i % gop != 0 {
            continue;
        }
        match (open_since, ok) {
            (Some(start), true) => {
                report.episodes.push(Episode {
                    kind: DesyncKind::LostIFrame,
                    start,
                    end: i as u64,
                });
                open_since = None;
            }
            (None, false) => open_since = Some(i as u64),
            _ => {}
        }
    }
    if let Some(start) = open_since {
        report.open = Some(Episode {
            kind: DesyncKind::LostIFrame,
            start,
            end: frame_ok.len() as u64,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_key_episode_closes_at_first_i_frame_after_handshake() {
        let mut p = ResyncProtocol::new(12);
        assert!(!p.is_resyncing());
        assert!(p.key_is_fresh(0));
        p.on_desync(DesyncKind::StaleKey, 100);
        assert!(p.is_resyncing());
        assert!(!p.key_is_fresh(105), "mid-handshake the key is stale");
        // An I-frame before the handshake completes cannot close it.
        p.on_i_frame(110);
        assert!(p.is_resyncing());
        assert!(p.key_is_fresh(112), "handshake done at 100+12");
        p.on_i_frame(120);
        assert!(!p.is_resyncing());
        assert_eq!(
            p.episodes(),
            &[Episode {
                kind: DesyncKind::StaleKey,
                start: 100,
                end: 120
            }]
        );
        assert_eq!(p.episodes()[0].duration(), 20);
    }

    #[test]
    fn lost_i_frame_needs_no_handshake() {
        let mut p = ResyncProtocol::new(50);
        p.on_desync(DesyncKind::LostIFrame, 7);
        assert!(p.key_is_fresh(7), "key never went stale");
        p.on_i_frame(17);
        assert_eq!(p.episodes().len(), 1);
        assert_eq!(p.episodes()[0].duration(), 10);
    }

    #[test]
    fn nested_desyncs_are_absorbed_into_the_open_episode() {
        let mut p = ResyncProtocol::new(5);
        p.on_desync(DesyncKind::StaleKey, 10);
        p.on_desync(DesyncKind::StaleKey, 12); // ignored
        p.on_desync(DesyncKind::LostIFrame, 13); // ignored
        p.on_i_frame(20);
        assert_eq!(p.episodes().len(), 1);
        assert_eq!(p.episodes()[0].start, 10);
    }

    #[test]
    fn repeated_episodes_accumulate_in_order() {
        let mut p = ResyncProtocol::new(2);
        for k in 0..3u64 {
            p.on_desync(DesyncKind::StaleKey, 100 * k);
            p.on_i_frame(100 * k + 10);
        }
        assert_eq!(p.episodes().len(), 3);
        assert!(p.report().open.is_none());
        assert_eq!(p.report().durations(), vec![10, 10, 10]);
        assert_eq!(p.report().max_duration(), 10);
        assert!(p.report().bounded_by(10));
        assert!(!p.report().bounded_by(9));
    }

    #[test]
    fn open_tail_is_reported_not_hidden() {
        let mut p = ResyncProtocol::new(4);
        p.on_desync(DesyncKind::StaleKey, 50);
        p.on_tick(60);
        let r = p.report();
        assert!(r.episodes.is_empty());
        let open = r.open.expect("episode still open");
        assert_eq!((open.start, open.end), (50, 60));
        assert_eq!(r.max_duration(), 10);
    }

    #[test]
    fn outage_episodes_follow_gop_anchors() {
        // GOP 4: I-frames at 0, 4, 8. Damaged I at 4 → outage until 8.
        let mut ok = vec![true; 12];
        ok[4] = false;
        ok[6] = false; // P damage inside an anchored GOP opens nothing extra
        let r = decoder_outage_episodes(&ok, 4);
        assert_eq!(
            r.episodes,
            vec![Episode {
                kind: DesyncKind::LostIFrame,
                start: 4,
                end: 8
            }]
        );
        assert!(r.open.is_none());
    }

    #[test]
    fn consecutive_lost_i_frames_extend_one_episode() {
        let mut ok = vec![true; 16];
        ok[4] = false;
        ok[8] = false;
        let r = decoder_outage_episodes(&ok, 4);
        assert_eq!(r.episodes.len(), 1);
        assert_eq!(r.episodes[0].duration(), 8);
    }

    #[test]
    fn outage_running_off_the_end_is_open() {
        let mut ok = vec![true; 10];
        ok[8] = false;
        let r = decoder_outage_episodes(&ok, 4);
        assert!(r.episodes.is_empty());
        assert_eq!(r.open.map(|e| (e.start, e.end)), Some((8, 10)));
    }

    #[test]
    fn degenerate_inputs_yield_empty_reports() {
        assert_eq!(decoder_outage_episodes(&[], 4), RecoveryReport::default());
        assert_eq!(
            decoder_outage_episodes(&[false, false], 0),
            RecoveryReport::default()
        );
        let all_ok = decoder_outage_episodes(&[true; 20], 5);
        assert!(all_ok.episodes.is_empty() && all_ok.open.is_none());
    }
}
