//! The graceful-degradation controller: a per-GOP policy ladder with a
//! hysteresis band.
//!
//! The paper's Table 2 picks one static policy per (motion, channel)
//! cell. This controller closes the loop instead: once per GOP it reads a
//! *distress* signal in `[0, 1]` (the chaos harness derives it from the
//! telemetry channel counters — lost / offered) and walks a three-rung
//! ladder:
//!
//! ```text
//! Full (encrypt everything)  ⇄  Degraded (I + α·P)  ⇄  IOnly
//! ```
//!
//! Each boundary has an **enter** threshold (step down when distress
//! reaches it) strictly above its **exit** threshold (step back up only
//! when distress falls to it). Signals inside the open band
//! `(exit, enter)` change nothing — that is the hysteresis invariant the
//! proptest suite pins: an arbitrary bounded in-band sequence never moves
//! the rung, so the controller cannot flap on noise. A minimum dwell adds
//! a second guard: after any transition the rung holds for `min_dwell`
//! observations regardless of the signal.
//!
//! The controller is a pure state machine — no clock, no RNG — so a
//! closed loop driving it from seeded simulation signals remains
//! bit-reproducible end to end.

/// One rung of the degradation ladder, most protective first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyRung {
    /// Encrypt every frame (the `All` policy).
    Full,
    /// Encrypt I-frames plus a fraction of P-frames (`I + α·P`).
    Degraded,
    /// Encrypt I-frames only.
    IOnly,
}

impl PolicyRung {
    /// The ladder, top to bottom.
    pub const LADDER: [PolicyRung; 3] = [PolicyRung::Full, PolicyRung::Degraded, PolicyRung::IOnly];

    /// Position on the ladder: 0 = Full, 2 = IOnly.
    pub fn index(self) -> usize {
        match self {
            PolicyRung::Full => 0,
            PolicyRung::Degraded => 1,
            PolicyRung::IOnly => 2,
        }
    }

    /// Human label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyRung::Full => "full",
            PolicyRung::Degraded => "I+P%",
            PolicyRung::IOnly => "I-only",
        }
    }

    fn from_index(i: usize) -> PolicyRung {
        match i {
            0 => PolicyRung::Full,
            1 => PolicyRung::Degraded,
            _ => PolicyRung::IOnly,
        }
    }
}

/// Why a [`ControllerConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerConfigError {
    /// A threshold was NaN or outside `[0, 1]`.
    OutOfRange(&'static str),
    /// An enter threshold does not sit strictly above its exit threshold
    /// (the hysteresis band would be empty or inverted).
    EmptyBand(&'static str),
    /// The two boundaries are not ordered along the ladder
    /// (`enter_degraded ≤ enter_ionly`, `exit_degraded ≤ exit_ionly`).
    UnorderedLadder,
    /// `min_dwell` must be at least 1 observation.
    ZeroDwell,
}

impl std::fmt::Display for ControllerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerConfigError::OutOfRange(what) => {
                write!(f, "{what} must be a finite value in [0, 1]")
            }
            ControllerConfigError::EmptyBand(which) => {
                write!(f, "hysteresis band at the {which} boundary is empty: enter must exceed exit")
            }
            ControllerConfigError::UnorderedLadder => {
                write!(f, "boundary thresholds must be ordered along the ladder")
            }
            ControllerConfigError::ZeroDwell => write!(f, "min_dwell must be >= 1"),
        }
    }
}

impl std::error::Error for ControllerConfigError {}

/// Validated thresholds of a [`DegradationController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Distress at or above this steps Full → Degraded.
    pub enter_degraded: f64,
    /// Distress at or below this steps Degraded → Full.
    pub exit_degraded: f64,
    /// Distress at or above this steps Degraded → IOnly.
    pub enter_ionly: f64,
    /// Distress at or below this steps IOnly → Degraded.
    pub exit_ionly: f64,
    /// Observations a rung is held after any transition.
    pub min_dwell: u32,
}

impl ControllerConfig {
    /// Build a config, rejecting NaN/out-of-range thresholds, empty
    /// hysteresis bands, unordered boundaries and a zero dwell.
    pub fn try_new(
        enter_degraded: f64,
        exit_degraded: f64,
        enter_ionly: f64,
        exit_ionly: f64,
        min_dwell: u32,
    ) -> Result<Self, ControllerConfigError> {
        for (what, v) in [
            ("enter_degraded", enter_degraded),
            ("exit_degraded", exit_degraded),
            ("enter_ionly", enter_ionly),
            ("exit_ionly", exit_ionly),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ControllerConfigError::OutOfRange(what));
            }
        }
        if exit_degraded >= enter_degraded {
            return Err(ControllerConfigError::EmptyBand("Full/Degraded"));
        }
        if exit_ionly >= enter_ionly {
            return Err(ControllerConfigError::EmptyBand("Degraded/IOnly"));
        }
        if enter_degraded > enter_ionly || exit_degraded > exit_ionly {
            return Err(ControllerConfigError::UnorderedLadder);
        }
        if min_dwell == 0 {
            return Err(ControllerConfigError::ZeroDwell);
        }
        Ok(ControllerConfig {
            enter_degraded,
            exit_degraded,
            enter_ionly,
            exit_ionly,
            min_dwell,
        })
    }

    /// Whether `rung` is *stable* under a constant distress `d`: the
    /// controller, once on `rung`, would never leave it. Hysteresis makes
    /// stability a set, not a point — for `d` inside a band, two adjacent
    /// rungs are both stable and history picks between them. This is the
    /// per-cell analytic optimum the chaos matrix validates against.
    pub fn is_stable(&self, rung: PolicyRung, d: f64) -> bool {
        match rung {
            PolicyRung::Full => d < self.enter_degraded,
            PolicyRung::Degraded => d < self.enter_ionly && d > self.exit_degraded,
            PolicyRung::IOnly => d > self.exit_ionly,
        }
    }
}

impl Default for ControllerConfig {
    /// Bands tuned for per-GOP packet-loss fractions: degrade past 10%
    /// loss (recover below 4%), fall back to I-only past 35% (recover
    /// below 20%), hold each rung for 2 GOPs.
    fn default() -> Self {
        ControllerConfig {
            enter_degraded: 0.10,
            exit_degraded: 0.04,
            enter_ionly: 0.35,
            exit_ionly: 0.20,
            min_dwell: 2,
        }
    }
}

/// The closed-loop ladder controller.
#[derive(Debug, Clone)]
pub struct DegradationController {
    config: ControllerConfig,
    rung: usize,
    /// Observations since the last transition (starts saturated so the
    /// first observation may transition).
    since_change: u32,
    /// Direction of the last transition: +1 down-ladder, -1 up-ladder.
    last_direction: i8,
    transitions: u32,
    flaps: u32,
    observations: u64,
}

/// A reversal counts as a flap when it undoes the previous transition
/// within this many observations of it (in units of `min_dwell`).
const FLAP_WINDOW_DWELLS: u32 = 2;

impl DegradationController {
    /// A controller starting at [`PolicyRung::Full`].
    pub fn new(config: ControllerConfig) -> Self {
        DegradationController {
            config,
            rung: 0,
            since_change: config.min_dwell,
            last_direction: 0,
            transitions: 0,
            flaps: 0,
            observations: 0,
        }
    }

    /// The validated thresholds.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The rung currently in force.
    pub fn rung(&self) -> PolicyRung {
        PolicyRung::from_index(self.rung)
    }

    /// Ladder transitions so far.
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// Direction reversals within the flap window — zero by construction
    /// for signals respecting the hysteresis band; the chaos soak gate
    /// fails if this ever reads nonzero.
    pub fn flaps(&self) -> u32 {
        self.flaps
    }

    /// Total observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feed one distress observation (clamped to `[0, 1]`; NaN is treated
    /// as full distress — a sensor that died is not good news) and return
    /// the rung to use for the next GOP. At most one ladder step per
    /// observation, and none within `min_dwell` of the last transition.
    pub fn observe(&mut self, distress: f64) -> PolicyRung {
        let d = if distress.is_nan() { 1.0 } else { distress.clamp(0.0, 1.0) };
        self.observations += 1;
        if self.since_change < self.config.min_dwell {
            self.since_change += 1;
            return self.rung();
        }
        let step: i8 = match PolicyRung::from_index(self.rung) {
            PolicyRung::Full => {
                if d >= self.config.enter_degraded {
                    1
                } else {
                    0
                }
            }
            PolicyRung::Degraded => {
                if d >= self.config.enter_ionly {
                    1
                } else if d <= self.config.exit_degraded {
                    -1
                } else {
                    0
                }
            }
            PolicyRung::IOnly => {
                if d <= self.config.exit_ionly {
                    -1
                } else {
                    0
                }
            }
        };
        if step == 0 {
            self.since_change = self.since_change.saturating_add(1);
            return self.rung();
        }
        if step == -self.last_direction
            && self.since_change < self.config.min_dwell * (1 + FLAP_WINDOW_DWELLS)
        {
            self.flaps += 1;
        }
        self.rung = (self.rung as i64 + step as i64).clamp(0, 2) as usize;
        self.last_direction = step;
        self.transitions += 1;
        self.since_change = 0;
        self.rung()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig::default()
    }

    #[test]
    fn default_config_is_valid() {
        let c = cfg();
        assert_eq!(
            ControllerConfig::try_new(
                c.enter_degraded,
                c.exit_degraded,
                c.enter_ionly,
                c.exit_ionly,
                c.min_dwell
            ),
            Ok(c)
        );
    }

    #[test]
    fn try_new_rejects_hostile_parameters() {
        use ControllerConfigError::*;
        assert_eq!(
            ControllerConfig::try_new(f64::NAN, 0.04, 0.35, 0.20, 2),
            Err(OutOfRange("enter_degraded"))
        );
        assert_eq!(
            ControllerConfig::try_new(0.1, -0.1, 0.35, 0.20, 2),
            Err(OutOfRange("exit_degraded"))
        );
        assert_eq!(
            ControllerConfig::try_new(0.1, 0.04, 1.5, 0.20, 2),
            Err(OutOfRange("enter_ionly"))
        );
        assert_eq!(
            ControllerConfig::try_new(0.1, 0.1, 0.35, 0.2, 2),
            Err(EmptyBand("Full/Degraded"))
        );
        assert_eq!(
            ControllerConfig::try_new(0.1, 0.04, 0.2, 0.2, 2),
            Err(EmptyBand("Degraded/IOnly"))
        );
        assert_eq!(
            ControllerConfig::try_new(0.5, 0.04, 0.35, 0.2, 2),
            Err(UnorderedLadder)
        );
        assert_eq!(
            ControllerConfig::try_new(0.1, 0.04, 0.35, 0.2, 0),
            Err(ZeroDwell)
        );
    }

    #[test]
    fn sustained_distress_walks_the_ladder_down() {
        let mut c = DegradationController::new(cfg());
        assert_eq!(c.rung(), PolicyRung::Full);
        let mut seen = vec![c.rung()];
        for _ in 0..10 {
            seen.push(c.observe(0.5));
        }
        assert_eq!(c.rung(), PolicyRung::IOnly);
        // One step at a time, never skipping Degraded.
        assert!(seen.contains(&PolicyRung::Degraded));
        assert_eq!(c.flaps(), 0, "monotone descent cannot flap");
    }

    #[test]
    fn calm_signal_walks_back_up() {
        let mut c = DegradationController::new(cfg());
        for _ in 0..10 {
            c.observe(0.9);
        }
        assert_eq!(c.rung(), PolicyRung::IOnly);
        for _ in 0..12 {
            c.observe(0.01);
        }
        assert_eq!(c.rung(), PolicyRung::Full);
        // Full descent then full ascent is adaptation, each leg far apart.
        assert_eq!(c.transitions(), 4);
    }

    #[test]
    fn in_band_noise_never_moves_the_rung() {
        // Distress oscillating inside (exit_degraded, enter_degraded) —
        // the band is exactly the region where nothing happens.
        let mut c = DegradationController::new(cfg());
        for i in 0..100 {
            let d = if i % 2 == 0 { 0.05 } else { 0.09 };
            assert_eq!(c.observe(d), PolicyRung::Full);
        }
        assert_eq!(c.transitions(), 0);
        assert_eq!(c.flaps(), 0);
    }

    #[test]
    fn dwell_holds_the_rung_after_a_transition() {
        let mut c = DegradationController::new(cfg());
        c.observe(0.2); // Full → Degraded
        assert_eq!(c.rung(), PolicyRung::Degraded);
        // Even a calm signal cannot step back during the dwell.
        assert_eq!(c.observe(0.0), PolicyRung::Degraded);
        assert_eq!(c.observe(0.0), PolicyRung::Degraded);
        // Dwell over: now it may.
        assert_eq!(c.observe(0.0), PolicyRung::Full);
    }

    #[test]
    fn immediate_reversal_is_counted_as_a_flap() {
        let mut c = DegradationController::new(cfg());
        c.observe(0.2); // down
        c.observe(0.0); // held (dwell)
        c.observe(0.0); // held (dwell)
        c.observe(0.0); // up — undoes the previous step within the window
        assert_eq!(c.rung(), PolicyRung::Full);
        assert_eq!(c.flaps(), 1);
    }

    #[test]
    fn nan_distress_reads_as_full_distress() {
        let mut c = DegradationController::new(cfg());
        c.observe(f64::NAN);
        assert_eq!(c.rung(), PolicyRung::Degraded);
    }

    #[test]
    fn stability_sets_match_the_bands() {
        let c = cfg();
        // Calm: only Full is stable.
        assert!(c.is_stable(PolicyRung::Full, 0.0));
        assert!(!c.is_stable(PolicyRung::Degraded, 0.0));
        assert!(!c.is_stable(PolicyRung::IOnly, 0.0));
        // Inside the Full/Degraded band both neighbours are stable.
        assert!(c.is_stable(PolicyRung::Full, 0.07));
        assert!(c.is_stable(PolicyRung::Degraded, 0.07));
        // Collapse: only IOnly is stable.
        assert!(c.is_stable(PolicyRung::IOnly, 0.4));
        assert!(!c.is_stable(PolicyRung::Degraded, 0.4));
        assert!(!c.is_stable(PolicyRung::Full, 0.4));
    }

    #[test]
    fn ladder_metadata_is_consistent() {
        for (i, rung) in PolicyRung::LADDER.into_iter().enumerate() {
            assert_eq!(rung.index(), i);
            assert!(!rung.label().is_empty());
        }
    }
}
