//! Adaptive retransmission-timeout estimation.
//!
//! The classic Jacobson/Karn algorithm (RFC 6298): a smoothed RTT and its
//! mean deviation are folded together into `RTO = SRTT + 4·RTTVAR`, every
//! timeout doubles the timeout up to a cap, and a fresh (non-retransmitted)
//! sample collapses the backoff again. The estimator is a pure state
//! machine over caller-supplied time values — it never reads a clock — so
//! a simulation feeding it sim-seconds stays bit-reproducible.
//!
//! Karn's rule is the *caller's* half of the contract: never feed
//! [`RtoEstimator::on_rtt_sample`] a sample measured on a segment that was
//! retransmitted (the sample is ambiguous — it may time the retransmit).
//! The sim harnesses in `thrifty-bench` honour this by sampling only
//! first-attempt deliveries.

/// Why an [`RtoConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoConfigError {
    /// A timeout parameter was NaN or infinite.
    NotFinite(&'static str),
    /// A timeout parameter was zero or negative.
    NonPositive(&'static str),
    /// The bounds are not ordered `min ≤ initial ≤ max`.
    Unordered,
    /// The backoff cap would overflow the doubling exponent.
    BackoffTooLarge(u32),
}

impl std::fmt::Display for RtoConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtoConfigError::NotFinite(what) => write!(f, "{what} must be finite"),
            RtoConfigError::NonPositive(what) => write!(f, "{what} must be > 0"),
            RtoConfigError::Unordered => {
                write!(f, "bounds must satisfy min_rto_s <= initial_rto_s <= max_rto_s")
            }
            RtoConfigError::BackoffTooLarge(v) => {
                write!(f, "max_backoff {v} exceeds the supported cap of 32 doublings")
            }
        }
    }
}

impl std::error::Error for RtoConfigError {}

/// Validated bounds of an [`RtoEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoConfig {
    /// RTO before any sample has arrived, seconds.
    pub initial_rto_s: f64,
    /// Hard lower bound on the produced RTO, seconds.
    pub min_rto_s: f64,
    /// Hard upper bound on the produced RTO, seconds (caps the backoff).
    pub max_rto_s: f64,
    /// Maximum number of timeout doublings.
    pub max_backoff: u32,
}

impl RtoConfig {
    /// Build a config, rejecting NaN/infinite/non-positive timeouts,
    /// unordered bounds and an overflowing backoff cap.
    pub fn try_new(
        initial_rto_s: f64,
        min_rto_s: f64,
        max_rto_s: f64,
        max_backoff: u32,
    ) -> Result<Self, RtoConfigError> {
        for (what, v) in [
            ("initial_rto_s", initial_rto_s),
            ("min_rto_s", min_rto_s),
            ("max_rto_s", max_rto_s),
        ] {
            if !v.is_finite() {
                return Err(RtoConfigError::NotFinite(what));
            }
            if v <= 0.0 {
                return Err(RtoConfigError::NonPositive(what));
            }
        }
        if !(min_rto_s <= initial_rto_s && initial_rto_s <= max_rto_s) {
            return Err(RtoConfigError::Unordered);
        }
        if max_backoff > 32 {
            return Err(RtoConfigError::BackoffTooLarge(max_backoff));
        }
        Ok(RtoConfig {
            initial_rto_s,
            min_rto_s,
            max_rto_s,
            max_backoff,
        })
    }
}

impl Default for RtoConfig {
    /// Conservative application-layer defaults: start at 50 ms, floor at
    /// 2 ms, cap at 800 ms after at most 6 doublings.
    fn default() -> Self {
        RtoConfig {
            initial_rto_s: 0.05,
            min_rto_s: 0.002,
            max_rto_s: 0.8,
            max_backoff: 6,
        }
    }
}

/// Jacobson/Karn adaptive RTO state.
///
/// Invariants (pinned by the proptest suite in `tests/`):
///
/// * [`rto_s`](Self::rto_s) is always finite and inside
///   `[min_rto_s, max_rto_s]`;
/// * consecutive [`on_timeout`](Self::on_timeout) calls never *decrease*
///   the RTO, and it saturates once the backoff cap or `max_rto_s` binds;
/// * hostile samples (NaN, infinite, non-positive) are ignored, never
///   absorbed into the state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoEstimator {
    config: RtoConfig,
    /// Smoothed RTT; negative sentinel would invite float-compare traps,
    /// so absence is modelled with `Option`.
    srtt_s: Option<f64>,
    rttvar_s: f64,
    backoff: u32,
}

impl RtoEstimator {
    /// Fresh estimator: no samples yet, RTO = `initial_rto_s`.
    pub fn new(config: RtoConfig) -> Self {
        RtoEstimator {
            config,
            srtt_s: None,
            rttvar_s: 0.0,
            backoff: 0,
        }
    }

    /// The validated bounds this estimator operates under.
    pub fn config(&self) -> &RtoConfig {
        &self.config
    }

    /// Fold in one RTT sample from a **first-attempt** delivery (Karn's
    /// rule: the caller must skip samples from retransmitted segments).
    /// Non-finite or non-positive samples are ignored. A valid sample
    /// resets the exponential backoff.
    pub fn on_rtt_sample(&mut self, rtt_s: f64) {
        if !rtt_s.is_finite() || rtt_s <= 0.0 {
            return;
        }
        match self.srtt_s {
            None => {
                // First sample (RFC 6298 §2.2): SRTT = R, RTTVAR = R/2.
                self.srtt_s = Some(rtt_s);
                self.rttvar_s = rtt_s / 2.0;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|, then
                // SRTT = 7/8·SRTT + 1/8·R (the RFC's update order).
                self.rttvar_s = 0.75 * self.rttvar_s + 0.25 * (srtt - rtt_s).abs();
                self.srtt_s = Some(0.875 * srtt + 0.125 * rtt_s);
            }
        }
        self.backoff = 0;
    }

    /// Record a retransmission timeout: double the RTO (up to the cap).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(self.config.max_backoff);
    }

    /// Current doubling count.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Smoothed RTT, if at least one sample arrived.
    pub fn srtt_s(&self) -> Option<f64> {
        self.srtt_s
    }

    /// The retransmission timeout to wait right now, seconds. Always
    /// finite and clamped to `[min_rto_s, max_rto_s]`.
    pub fn rto_s(&self) -> f64 {
        let base = match self.srtt_s {
            Some(srtt) => srtt + 4.0 * self.rttvar_s,
            None => self.config.initial_rto_s,
        };
        let base = base.clamp(self.config.min_rto_s, self.config.max_rto_s);
        let scaled = base * 2f64.powi(self.backoff.min(32) as i32);
        scaled.clamp(self.config.min_rto_s, self.config.max_rto_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = RtoConfig::default();
        assert_eq!(
            RtoConfig::try_new(c.initial_rto_s, c.min_rto_s, c.max_rto_s, c.max_backoff),
            Ok(c)
        );
    }

    #[test]
    fn try_new_rejects_hostile_parameters() {
        use RtoConfigError::*;
        assert_eq!(RtoConfig::try_new(f64::NAN, 0.01, 1.0, 6), Err(NotFinite("initial_rto_s")));
        assert_eq!(
            RtoConfig::try_new(0.05, f64::INFINITY, 1.0, 6),
            Err(NotFinite("min_rto_s"))
        );
        assert_eq!(RtoConfig::try_new(0.05, 0.01, -1.0, 6), Err(NonPositive("max_rto_s")));
        assert_eq!(RtoConfig::try_new(0.05, 0.01, 0.0, 6), Err(NonPositive("max_rto_s")));
        assert_eq!(RtoConfig::try_new(0.005, 0.01, 1.0, 6), Err(Unordered));
        assert_eq!(RtoConfig::try_new(2.0, 0.01, 1.0, 6), Err(Unordered));
        assert_eq!(RtoConfig::try_new(0.05, 0.01, 1.0, 33), Err(BackoffTooLarge(33)));
    }

    #[test]
    fn first_sample_initialises_per_rfc() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        assert_eq!(e.srtt_s(), None);
        assert!((e.rto_s() - 0.05).abs() < 1e-12, "pre-sample RTO is initial");
        e.on_rtt_sample(0.1);
        assert_eq!(e.srtt_s(), Some(0.1));
        // SRTT + 4·(R/2) = 0.1 + 0.2 = 0.3.
        assert!((e.rto_s() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn steady_samples_converge_to_srtt() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        for _ in 0..200 {
            e.on_rtt_sample(0.02);
        }
        let srtt = e.srtt_s().unwrap();
        assert!((srtt - 0.02).abs() < 1e-9, "constant samples converge: {srtt}");
        // RTTVAR decays toward 0, so the RTO approaches SRTT (floored).
        assert!(e.rto_s() < 0.03, "rto {}", e.rto_s());
        assert!(e.rto_s() >= e.config().min_rto_s);
    }

    #[test]
    fn timeouts_double_until_capped() {
        let cfg = RtoConfig::try_new(0.05, 0.002, 10.0, 4).unwrap();
        let mut e = RtoEstimator::new(cfg);
        let mut last = e.rto_s();
        for _ in 0..10 {
            e.on_timeout();
            let now = e.rto_s();
            assert!(now >= last, "monotone under timeouts: {now} < {last}");
            last = now;
        }
        assert_eq!(e.backoff(), 4);
        assert!((last - 0.05 * 16.0).abs() < 1e-12, "capped at 2^4 doublings");
        // A fresh sample collapses the backoff.
        e.on_rtt_sample(0.01);
        assert_eq!(e.backoff(), 0);
        assert!(e.rto_s() < last);
    }

    #[test]
    fn max_rto_binds_before_the_doubling_runs_away() {
        let cfg = RtoConfig::try_new(0.05, 0.002, 0.08, 20).unwrap();
        let mut e = RtoEstimator::new(cfg);
        for _ in 0..20 {
            e.on_timeout();
        }
        assert!((e.rto_s() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn hostile_samples_are_ignored() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        e.on_rtt_sample(0.1);
        let before = e;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.5] {
            e.on_rtt_sample(bad);
            assert_eq!(e, before, "sample {bad} must be ignored");
        }
    }

    #[test]
    fn rto_stays_in_bounds_under_extreme_samples() {
        let cfg = RtoConfig::try_new(0.05, 0.01, 0.5, 6).unwrap();
        let mut e = RtoEstimator::new(cfg);
        e.on_rtt_sample(1e6); // absurdly slow path
        assert!((e.rto_s() - 0.5).abs() < 1e-12, "clamped to max");
        e.on_rtt_sample(1e-9); // absurdly fast path, repeatedly
        for _ in 0..100 {
            e.on_rtt_sample(1e-9);
        }
        assert!(e.rto_s() >= 0.01, "clamped to min: {}", e.rto_s());
    }
}
