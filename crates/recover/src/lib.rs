//! # thrifty-recover
//!
//! The recovery half of the fault subsystem: where `thrifty-faults`
//! *injects* hostile behaviour, this crate *reacts* to it — and does so
//! deterministically, so every closed loop built on top of it stays
//! bit-reproducible from its seeds.
//!
//! Three pieces, all pure state machines with no clock, no RNG and no
//! allocation beyond episode bookkeeping:
//!
//! * [`RtoEstimator`] — Jacobson/Karn smoothed-RTT retransmission-timeout
//!   estimation with capped exponential backoff, replacing the fixed RTO
//!   the TCP latency model and the ARQ stall tax used before. Time is
//!   whatever unit the caller feeds in (the sim engines feed sim-seconds),
//!   so determinism is inherited, not asserted.
//! * [`ResyncProtocol`] — turns stale-key and lost-I-frame desyncs into
//!   bounded, *measured* [`Episode`]s: a re-key handshake of a known
//!   length, then decoder resync at the next I-frame. What used to be an
//!   unbounded erasure run becomes a recovery time you can put in a table.
//! * [`DegradationController`] — the per-GOP policy ladder
//!   (full → I+P% → I-only) with a hysteresis band and a minimum dwell, so
//!   the encryption policy tracks channel distress without flapping. The
//!   no-flap invariant is pinned by a proptest suite and re-checked live
//!   by the `reproduce chaos` soak matrix.
//!
//! Determinism survives the closed loop because every input these
//! machines consume (RTT samples, desync events, distress signals) is
//! itself derived from seeded streams, and every transition is a pure
//! function of (state, input). See DESIGN.md §11.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod controller;
pub mod resync;
pub mod rto;

pub use controller::{ControllerConfig, ControllerConfigError, DegradationController, PolicyRung};
pub use resync::{decoder_outage_episodes, DesyncKind, Episode, RecoveryReport, ResyncProtocol};
pub use rto::{RtoConfig, RtoConfigError, RtoEstimator};
