//! Property suite pinning the two invariants the chaos soak gate relies on:
//!
//! * **Controller no-flap** — a distress signal confined to a hysteresis
//!   band never toggles the policy rung, whatever its order or length, and
//!   monotone distress never produces a flap. The soak matrix's
//!   "controller flaps == 0" gate is a live re-check of this property.
//! * **RTO estimator bounds** — `rto_s()` stays finite inside
//!   `[min_rto_s, max_rto_s]` under arbitrary interleavings of samples and
//!   timeouts (hostile samples included), consecutive timeouts never
//!   shrink it, and it saturates once the backoff cap binds.

use proptest::prelude::*;
use thrifty_recover::{
    ControllerConfig, DegradationController, PolicyRung, RtoConfig, RtoEstimator,
};

/// A randomly placed — but always valid — controller config, so the band
/// properties are not accidents of the default thresholds.
fn controller_config(
    exit_d: f64,
    gap_d: f64,
    exit_i: f64,
    gap_i: f64,
    dwell: u32,
) -> ControllerConfig {
    // Construct ordered thresholds by stacking strictly positive gaps.
    let exit_degraded = exit_d;
    let enter_degraded = exit_degraded + gap_d;
    let exit_ionly = enter_degraded.max(exit_i);
    let enter_ionly = exit_ionly + gap_i;
    ControllerConfig::try_new(enter_degraded, exit_degraded, enter_ionly, exit_ionly, dwell)
        .expect("stacked gaps always give a valid ladder")
}

/// Interpolate into the open interval `(lo, hi)`.
fn in_band(lo: f64, hi: f64, t: f64) -> f64 {
    let t = t.clamp(0.01, 0.99);
    lo + (hi - lo) * t
}

proptest! {
    /// Signals inside the Full/Degraded hysteresis band never move a
    /// controller off `Full` — zero transitions, zero flaps, regardless of
    /// where the band sits or how the signal dances inside it.
    #[test]
    fn full_rung_ignores_in_band_noise(
        exit_d in 0.01f64..0.2,
        gap_d in 0.02f64..0.2,
        exit_i in 0.3f64..0.5,
        gap_i in 0.02f64..0.3,
        dwell in 1u32..5,
        signal in proptest::collection::vec(0.0f64..1.0, 0..200),
    ) {
        let cfg = controller_config(exit_d, gap_d, exit_i, gap_i, dwell);
        let mut c = DegradationController::new(cfg);
        for t in &signal {
            let d = in_band(cfg.exit_degraded, cfg.enter_degraded, *t);
            prop_assert_eq!(c.observe(d), PolicyRung::Full);
        }
        prop_assert_eq!(c.transitions(), 0);
        prop_assert_eq!(c.flaps(), 0);
    }

    /// Once on `Degraded`, signals inside the open corridor
    /// `(exit_degraded, enter_ionly)` freeze the rung there.
    #[test]
    fn degraded_rung_ignores_in_corridor_noise(
        exit_d in 0.01f64..0.2,
        gap_d in 0.02f64..0.2,
        exit_i in 0.3f64..0.5,
        gap_i in 0.02f64..0.3,
        dwell in 1u32..5,
        signal in proptest::collection::vec(0.0f64..1.0, 0..200),
    ) {
        let cfg = controller_config(exit_d, gap_d, exit_i, gap_i, dwell);
        let mut c = DegradationController::new(cfg);
        // Drive to Degraded with distress that is above enter_degraded but
        // below enter_ionly, then let the dwell expire.
        let push = in_band(cfg.enter_degraded, cfg.enter_ionly, 0.5);
        let hold = in_band(cfg.exit_degraded, cfg.enter_ionly, 0.5);
        for _ in 0..=(cfg.min_dwell as usize * 2) {
            c.observe(push);
        }
        for _ in 0..cfg.min_dwell {
            c.observe(hold);
        }
        prop_assert_eq!(c.rung(), PolicyRung::Degraded);
        let settled = c.transitions();
        for t in &signal {
            let d = in_band(cfg.exit_degraded, cfg.enter_ionly, *t);
            prop_assert_eq!(c.observe(d), PolicyRung::Degraded);
        }
        prop_assert_eq!(c.transitions(), settled);
        prop_assert_eq!(c.flaps(), 0);
    }

    /// A monotone nondecreasing distress history can only walk the ladder
    /// one way, so it can never register a flap — and the rung it settles
    /// on is stable at the final signal level whenever that level is
    /// outside both bands.
    #[test]
    fn monotone_distress_never_flaps(
        raw in proptest::collection::vec(0.0f64..1.0, 1..200),
        dwell in 1u32..4,
    ) {
        let cfg = ControllerConfig::try_new(0.10, 0.04, 0.35, 0.20, dwell)
            .expect("default-shaped ladder");
        let mut signal = raw;
        signal.sort_by(|a, b| a.partial_cmp(b).expect("strategy yields no NaN"));
        let mut c = DegradationController::new(cfg);
        for &d in &signal {
            c.observe(d);
        }
        prop_assert_eq!(c.flaps(), 0);
        prop_assert!(c.transitions() <= 2, "three rungs admit two one-way steps");
    }

    /// Arbitrary (even hostile) distress values never panic the
    /// controller, never move it more than one rung per observation, and
    /// leave every counter consistent.
    #[test]
    fn arbitrary_signals_keep_the_controller_sane(
        raw in proptest::collection::vec((0u8..6, 0.0f64..1.0), 0..200),
    ) {
        let mut c = DegradationController::new(ControllerConfig::default());
        let mut prev = c.rung().index() as i64;
        for &(kind, v) in &raw {
            // Mix in out-of-range and NaN probes alongside honest values.
            let d = match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -v - 1.0,
                3 => v + 1.5,
                _ => v,
            };
            let rung = c.observe(d).index() as i64;
            prop_assert!((rung - prev).abs() <= 1, "one step per observation");
            prev = rung;
        }
        prop_assert_eq!(c.observations(), raw.len() as u64);
        prop_assert!(c.flaps() <= c.transitions());
    }

    /// Under any interleaving of RTT samples (hostile ones included) and
    /// timeouts, the produced RTO is finite and stays inside the
    /// configured `[min, max]` bounds.
    #[test]
    fn rto_stays_finite_and_bounded(
        min_ms in 0.5f64..5.0,
        initial_x in 1.0f64..10.0,
        max_x in 1.0f64..50.0,
        max_backoff in 0u32..10,
        ops in proptest::collection::vec((0u8..4, 0.0f64..2.0), 0..200),
    ) {
        let min = min_ms / 1e3;
        let initial = min * initial_x;
        let max = initial * max_x;
        let cfg = RtoConfig::try_new(initial, min, max, max_backoff)
            .expect("stacked multipliers always give ordered bounds");
        let mut e = RtoEstimator::new(cfg);
        for &(kind, v) in &ops {
            match kind {
                0 => e.on_timeout(),
                1 => e.on_rtt_sample(f64::NAN),
                2 => e.on_rtt_sample(-v),
                _ => e.on_rtt_sample(v),
            }
            let rto = e.rto_s();
            prop_assert!(rto.is_finite());
            prop_assert!(rto >= cfg.min_rto_s - 1e-12, "rto {rto} under min");
            prop_assert!(rto <= cfg.max_rto_s + 1e-12, "rto {rto} over max");
            prop_assert!(e.backoff() <= cfg.max_backoff);
        }
    }

    /// From any reachable estimator state, consecutive timeouts are
    /// monotone nondecreasing in RTO, and once the backoff cap is reached
    /// the RTO saturates exactly.
    #[test]
    fn timeouts_are_monotone_and_saturate(
        warmup in proptest::collection::vec((any::<bool>(), 0.001f64..1.0), 0..50),
        max_backoff in 0u32..8,
    ) {
        let cfg = RtoConfig::try_new(0.05, 0.002, 60.0, max_backoff)
            .expect("wide static bounds are valid");
        let mut e = RtoEstimator::new(cfg);
        for &(timeout, rtt) in &warmup {
            if timeout {
                e.on_timeout();
            } else {
                e.on_rtt_sample(rtt);
            }
        }
        let mut last = e.rto_s();
        for _ in 0..(max_backoff as usize + 4) {
            e.on_timeout();
            let now = e.rto_s();
            prop_assert!(now >= last - 1e-15, "timeout shrank the RTO: {now} < {last}");
            last = now;
        }
        // The cap is now pinned: further timeouts change nothing at all.
        let saturated = e.rto_s();
        e.on_timeout();
        e.on_timeout();
        prop_assert_eq!(e.backoff(), cfg.max_backoff);
        prop_assert!(e.rto_s() == saturated, "saturated RTO must be bit-stable");
    }

    /// A valid first-attempt sample always collapses the backoff, so the
    /// post-sample RTO never exceeds the pre-timeout-storm RTO scaled by
    /// the sample's own contribution — concretely: sample, then storm,
    /// then sample again returns backoff to zero.
    #[test]
    fn fresh_samples_collapse_backoff(
        rtt in 0.001f64..0.5,
        storms in 1u32..12,
    ) {
        let mut e = RtoEstimator::new(RtoConfig::default());
        e.on_rtt_sample(rtt);
        for _ in 0..storms {
            e.on_timeout();
        }
        prop_assert!(e.backoff() > 0);
        e.on_rtt_sample(rtt);
        prop_assert_eq!(e.backoff(), 0);
        let base = e.rto_s();
        e.on_timeout();
        prop_assert!(e.rto_s() >= base, "first doubling starts from the base again");
    }
}
