//! What the eavesdropper actually sees (the paper's Figure 6 screenshots).
//!
//! Runs the full simulated transfer for each encryption mode, reconstructs
//! the clip at the legitimate receiver and at the eavesdropper with the
//! frame-copy concealment decoder, and writes mid-clip luma screenshots as
//! PGM images under `target/eavesdropper_view/`.
//!
//! Run with: `cargo run --release --example eavesdropper_view`

use std::fs;
use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::crypto::Algorithm;
use thrifty::sim::experiment::{Experiment, ExperimentConfig};
use thrifty::video::quality::{measure_quality, ConcealingDecoder};
use thrifty::video::yuv::clip_to_y4m;
use thrifty::video::MotionLevel;
use thrifty::sim::sender::SenderSim;

fn main() {
    let out_dir = std::path::Path::new("target/eavesdropper_view");
    fs::create_dir_all(out_dir).expect("create output directory");

    for (label, motion) in [("slow", MotionLevel::Low), ("fast", MotionLevel::High)] {
        for mode in EncryptionMode::TABLE1 {
            let policy = Policy::new(Algorithm::Aes256, mode);
            let mut cfg = ExperimentConfig::paper_cell(motion, 30, policy);
            cfg.trials = 1;
            cfg.frames = 120;
            let exp = Experiment::prepare(cfg);

            // One transfer; reconstruct both views.
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
            let summary = SenderSim::new(&exp.params, policy).run(exp.stream(), &mut rng);
            let sens = motion.sensitivity_fraction();
            let decoder = ConcealingDecoder;
            let rx = decoder.reconstruct(
                exp.clip(),
                &summary.receiver_frame_flags(cfg.frames, sens),
                30,
            );
            let eve = decoder.reconstruct(
                exp.clip(),
                &summary.eavesdropper_frame_flags(cfg.frames, sens),
                30,
            );
            let q_rx = measure_quality(exp.clip(), &rx);
            let q_eve = measure_quality(exp.clip(), &eve);

            // Mid-clip screenshot, like Figure 6.
            let shot = cfg.frames / 2;
            let base = format!("{label}_{}", mode.label().replace('%', "pct"));
            fs::write(out_dir.join(format!("{base}_receiver.pgm")), rx[shot].to_pgm())
                .expect("write receiver screenshot");
            fs::write(
                out_dir.join(format!("{base}_eavesdropper.pgm")),
                eve[shot].to_pgm(),
            )
            .expect("write eavesdropper screenshot");
            // Playable clip of the eavesdropper's view (mpv/ffplay).
            fs::write(
                out_dir.join(format!("{base}_eavesdropper.y4m")),
                clip_to_y4m(&eve, 30),
            )
            .expect("write eavesdropper clip");

            println!(
                "{label:<5} {:>4}: receiver PSNR {:>6.2} dB (MOS {:.2}) | eavesdropper PSNR {:>6.2} dB (MOS {:.2})",
                mode.label(),
                q_rx.psnr_of_mean_mse,
                q_rx.score,
                q_eve.psnr_of_mean_mse,
                q_eve.score,
            );
        }
        println!();
    }
    println!("screenshots (.pgm) and clips (.y4m) written to {}", out_dir.display());
}
