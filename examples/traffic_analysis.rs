//! The Section 3 traffic-analysis attack and the padding countermeasure.
//!
//! "The eavesdropper may be able to distinguish packets as belonging to
//! either I-frames or P-frames based on their size" — which matters because
//! knowing which packets are I-fragments tells the eavesdropper exactly
//! which packets the sender will encrypt under the thrifty policies. This
//! example mounts that attack against a simulated transfer and then shows
//! what payload padding costs and buys.
//!
//! Run with: `cargo run --release --example traffic_analysis`

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrifty::analytic::params::{ScenarioParams, SAMSUNG_GALAXY_S2};
use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::crypto::Algorithm;
use thrifty::net::traffic::{PaddingPolicy, SizeClassifier};
use thrifty::sim::sender::SenderSim;
use thrifty::video::encoder::StatisticalEncoder;
use thrifty::video::{FrameType, MotionLevel};

fn main() {
    let motion = MotionLevel::Low;
    let params = ScenarioParams::calibrated(motion, 30, SAMSUNG_GALAXY_S2, 5, 0.92);
    let mut rng = StdRng::seed_from_u64(1);
    let stream = StatisticalEncoder::new(motion, 30).encode(300, &mut rng);
    // Transfer in the clear: every packet is observable.
    let policy = Policy::new(Algorithm::Aes256, EncryptionMode::None);
    let summary = SenderSim::new(&params, policy).run(&stream, &mut rng);

    // Ground truth for scoring: is each captured packet an I fragment?
    let labelled: Vec<(usize, bool)> = summary
        .records
        .iter()
        .map(|r| (r.bytes, r.ftype == FrameType::I))
        .collect();

    println!("traffic analysis on a slow-motion transfer ({} packets)\n", labelled.len());
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "padding", "accuracy", "separation", "byte overhead"
    );
    for (name, padding) in [
        ("none (paper)", PaddingPolicy::None),
        ("to 512-byte buckets", PaddingPolicy::ToMultiple(512)),
        ("to MTU", PaddingPolicy::ToMtu),
    ] {
        let padded: Vec<(usize, bool)> = labelled
            .iter()
            .map(|&(b, l)| (padding.padded_size(b, 1460), l))
            .collect();
        let sizes: Vec<usize> = padded.iter().map(|&(b, _)| b).collect();
        let overhead = padding.overhead(
            &labelled.iter().map(|&(b, _)| b).collect::<Vec<_>>(),
            1460,
        );
        match SizeClassifier::fit(&sizes) {
            Some(c) => println!(
                "{:<22} {:>11.1}% {:>12.3} {:>13.1}%",
                name,
                c.accuracy(&padded) * 100.0,
                c.separation(1460),
                overhead * 100.0
            ),
            None => println!(
                "{:<22} {:>12} {:>12} {:>13.1}%",
                name,
                "defeated",
                "0",
                overhead * 100.0
            ),
        }
    }
    println!(
        "\nUnpadded sizes identify I-fragments almost perfectly; padding to the MTU\n\
         removes the signal entirely at the cost of extra airtime — exactly the\n\
         trade the paper points at but leaves out of scope."
    );
}
