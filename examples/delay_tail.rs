//! Tail latency per encryption policy — beyond the paper's means.
//!
//! The algorithm the paper cites (Heffes–Lucantoni) computes "the
//! distribution function and the moments" of the packet delay; the figures
//! only plot means. This example inverts the waiting-time transform
//! (Abate–Whitt Euler inversion of the 2-MMPP/G/1 workload) to show the
//! p50/p95/p99 delay per policy — where selective encryption looks even
//! better than on average, because queueing tails amplify the heavy
//! policies disproportionately.
//!
//! Run with: `cargo run --release --example delay_tail`

use thrifty::analytic::delay::DelayModel;
use thrifty::analytic::params::{ScenarioParams, SAMSUNG_GALAXY_S2};
use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::crypto::Algorithm;
use thrifty::video::MotionLevel;

fn main() {
    println!("delay percentiles, fast motion, GOP 30, Samsung Galaxy S-II\n");
    for alg in [Algorithm::Aes256, Algorithm::TripleDes] {
        println!("=== {alg} ===");
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "mode", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "p99/mean"
        );
        let params = ScenarioParams::calibrated(MotionLevel::High, 30, SAMSUNG_GALAXY_S2, 5, 0.92);
        let model = DelayModel::new(&params);
        for mode in EncryptionMode::TABLE1 {
            let policy = Policy::new(alg, mode);
            let mean = model.predict(policy).unwrap().mean_delay_s;
            let q = model
                .predict_percentiles(policy, &[0.5, 0.95, 0.99])
                .unwrap();
            println!(
                "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.1}x",
                mode.label(),
                mean * 1e3,
                q[0] * 1e3,
                q[1] * 1e3,
                q[2] * 1e3,
                q[2] / mean,
            );
        }
        println!();
    }
    println!(
        "Takeaway: the encrypt-everything tail stretches several times further\n\
         than its mean; the I-only policy keeps even p99 near the unencrypted\n\
         baseline — the thrifty trade is strongest exactly where users feel it."
    );
}
