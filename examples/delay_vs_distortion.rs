//! The paper's central trade-off (Sections 6.2, Figures 4 & 7): for each
//! encryption mode, the per-packet delay at the sender versus the
//! distortion inflicted on the eavesdropper — model ("Analysis") next to
//! simulation ("Experiment"), for slow- and fast-motion content.
//!
//! Run with: `cargo run --release --example delay_vs_distortion`

use thrifty::analytic::delay::DelayModel;
use thrifty::analytic::distortion::{DistortionModel, Observer};
use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::analytic::regression::SceneDistortion;
use thrifty::crypto::Algorithm;
use thrifty::sim::experiment::{Experiment, ExperimentConfig};
use thrifty::video::MotionLevel;

fn main() {
    for (label, motion) in [("slow-motion", MotionLevel::Low), ("fast-motion", MotionLevel::High)] {
        println!("=== {label}, GOP 30, AES-256, Samsung Galaxy S-II ===");
        println!(
            "{:<8} {:>14} {:>14} {:>12} {:>12} {:>9}",
            "mode", "delay ana(ms)", "delay sim(ms)", "PSNR ana", "PSNR sim", "MOS sim"
        );
        let scene = SceneDistortion::measure(motion, 60, 12, 11);
        for mode in EncryptionMode::TABLE1 {
            let policy = Policy::new(Algorithm::Aes256, mode);
            let mut cfg = ExperimentConfig::paper_cell(motion, 30, policy);
            cfg.trials = 5;
            cfg.frames = 150;
            let exp = Experiment::prepare(cfg);
            let ana_delay = DelayModel::new(&exp.params).predict(policy).unwrap();
            let ana_dist =
                DistortionModel::new(&exp.params, &scene).predict(policy, Observer::Eavesdropper);
            let result = exp.run();
            println!(
                "{:<8} {:>14.3} {:>8.3} ±{:<4.3} {:>9.1} dB {:>9.1} dB {:>9.2}",
                mode.label(),
                ana_delay.mean_delay_s * 1e3,
                result.delay_s.mean * 1e3,
                result.delay_s.ci95 * 1e3,
                ana_dist.psnr_db,
                result.psnr_eve_db.mean,
                result.mos_eve.mean,
            );
        }
        println!();
    }
    println!(
        "Reading the table like the paper does:\n\
         - I-encryption is nearly as cheap as no encryption; P/all cost much more (Fig. 7).\n\
         - For slow motion, I-encryption alone floors the eavesdropper's quality (Fig. 4a).\n\
         - For fast motion, P-frames leak content, so I needs a P fraction on top (Fig. 4b)."
    );
}
