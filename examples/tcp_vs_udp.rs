//! HTTP/TCP versus RTP/UDP transfers (paper Section 6.4, Figures 12–15).
//!
//! The paper repeats the selective-encryption experiments over HTTP/TCP,
//! with the encryption marker carried in a TCP option header: latencies are
//! somewhat higher (retransmissions), the receiver's quality improves
//! (reliable delivery), and the eavesdropper's distortion trends are
//! unchanged.
//!
//! Run with: `cargo run --release --example tcp_vs_udp`

use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::crypto::Algorithm;
use thrifty::net::tcp::TcpSegment;
use thrifty::sim::experiment::{Experiment, ExperimentConfig, Transport};
use thrifty::video::MotionLevel;

fn main() {
    // First show the actual wire format: the marker option of §6.4.
    let seg = TcpSegment {
        src_port: 8080,
        dst_port: 41000,
        seq: 1,
        ack: 1,
        encrypted_marker: true,
        payload: b"encrypted video chunk".to_vec(),
    };
    let wire = seg.emit();
    let parsed = TcpSegment::parse(&wire).unwrap();
    println!(
        "TCP segment: {} bytes on the wire, marker option = {}\n",
        wire.len(),
        parsed.encrypted_marker
    );

    for (label, motion) in [("slow-motion", MotionLevel::Low), ("fast-motion", MotionLevel::High)] {
        println!("=== {label}, GOP 30, AES-256 ===");
        println!(
            "{:<8} {:>16} {:>16} {:>12} {:>12}",
            "mode", "UDP delay (ms)", "TCP delay (ms)", "eve PSNR", "rx PSNR"
        );
        for mode in EncryptionMode::TABLE1 {
            let policy = Policy::new(Algorithm::Aes256, mode);
            let mut cfg = ExperimentConfig::paper_cell(motion, 30, policy);
            cfg.trials = 4;
            cfg.frames = 150;
            let udp = Experiment::prepare(cfg).run();
            cfg.transport = Transport::HttpTcp;
            let tcp = Experiment::prepare(cfg).run();
            println!(
                "{:<8} {:>16.3} {:>16.3} {:>9.1} dB {:>9.1} dB",
                mode.label(),
                udp.delay_s.mean * 1e3,
                tcp.delay_s.mean * 1e3,
                tcp.psnr_eve_db.mean,
                tcp.psnr_rx_db.mean,
            );
        }
        println!();
    }
    println!(
        "As in the paper: TCP adds latency but the policy ordering and the\n\
         eavesdropper's distortion trends are the same as with RTP/UDP."
    );
}
