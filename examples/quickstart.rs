//! Quickstart: the paper's Figure 1 workflow.
//!
//! A user is about to upload a clip over open WiFi and picks a privacy
//! level. The advisor calibrates the analytical framework from minimal
//! measurements and, for the balanced choice, finds the cheapest encryption
//! policy that still renders the stream useless to an eavesdropper.
//!
//! Run with: `cargo run --release --example quickstart`

use thrifty::analytic::params::SAMSUNG_GALAXY_S2;
use thrifty::crypto::Algorithm;
use thrifty::video::MotionLevel;
use thrifty::{PolicyAdvisor, PrivacyPreference};

fn main() {
    println!("thrifty quickstart — selective encryption for mobile video uploads\n");
    for (label, motion) in [("slow-motion", MotionLevel::Low), ("fast-motion", MotionLevel::High)] {
        println!("=== {label} clip, GOP 30, Samsung Galaxy S-II, AES-256 ===");
        let advisor = PolicyAdvisor::calibrate(motion, 30, SAMSUNG_GALAXY_S2, Algorithm::Aes256);
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>9} {:>8}",
            "preference", "policy", "delay (ms)", "eve PSNR", "eve MOS", "power"
        );
        for (name, pref) in [
            ("no privacy", PrivacyPreference::NoPrivacy),
            ("balanced", PrivacyPreference::Balanced),
            ("full privacy", PrivacyPreference::FullPrivacy),
        ] {
            let r = advisor.recommend(pref);
            println!(
                "{:<14} {:>10} {:>12.3} {:>9.1} dB {:>9.2} {:>6.2} W",
                name,
                r.policy.mode.label(),
                r.delay.mean_delay_s * 1e3,
                r.distortion.psnr_db,
                r.distortion.mos,
                r.power_w,
            );
        }
        let balanced = advisor.recommend(PrivacyPreference::Balanced);
        println!("advisor: {}\n", balanced.rationale);
    }
    println!(
        "Key result (paper §1): selective encryption preserves confidentiality\n\
         while cutting encryption delay by up to 75% and energy by up to 92%."
    );
}
