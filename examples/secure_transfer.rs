//! End-to-end secure transfer over the real-bytes pipeline (paper Fig. 3).
//!
//! Builds genuine H.264 Annex-B NAL units, runs the threaded
//! producer → encryptor → air → {receiver, eavesdropper} pipeline with the
//! actual AES-256 cipher in per-segment OFB mode, and shows that the
//! receiver reconstructs every frame byte-for-byte while the eavesdropper
//! can only use what was left in the clear.
//!
//! Run with: `cargo run --release --example secure_transfer`

use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::crypto::Algorithm;
use thrifty::sim::pipeline::{run_pipeline, InputFrame, PipelineConfig};
use thrifty::video::FrameType;

fn frames(n: usize, gop: usize, p_bytes: usize) -> Vec<InputFrame> {
    (0..n)
        .map(|i| {
            let ftype = if i % gop == 0 { FrameType::I } else { FrameType::P };
            let bytes = if ftype == FrameType::I { 15_000 } else { p_bytes };
            InputFrame::synthetic(i, ftype, bytes)
        })
        .collect()
}

fn main() {
    println!("real-bytes pipeline: 60 frames, GOP 30, AES-256 OFB per segment\n");
    for (mode, note) in [
        (EncryptionMode::None, "everything readable by anyone"),
        (EncryptionMode::IFrames, "paper's slow-motion recommendation"),
        (
            EncryptionMode::IPlusFractionP(0.2),
            "paper's fast-motion recommendation",
        ),
        (EncryptionMode::All, "full privacy, full cost"),
    ] {
        let config = PipelineConfig {
            policy: Policy::new(Algorithm::Aes256, mode),
            loss_prob: 0.0,
            seed: 2024,
            ..PipelineConfig::default()
        };
        let out = run_pipeline(frames(60, 30, 1200), config);
        println!(
            "{:>8}: {:>3} packets ({:>3} encrypted) | receiver {}/60 frames | eavesdropper {}/60 frames   ({note})",
            mode.label(),
            out.packets_sent,
            out.packets_encrypted,
            out.receiver.frames_ok.len(),
            out.eavesdropper.frames_ok.len(),
        );
        assert_eq!(
            out.receiver.frames_ok.len(),
            60,
            "the legitimate receiver must always reconstruct everything"
        );
    }

    // With channel loss both parties suffer, but encryption still only
    // hurts the eavesdropper.
    println!("\nwith 10% packet loss on the air:");
    let config = PipelineConfig {
        policy: Policy::new(Algorithm::Aes256, EncryptionMode::IFrames),
        loss_prob: 0.10,
        seed: 7,
        ..PipelineConfig::default()
    };
    let out = run_pipeline(frames(60, 30, 1200), config);
    println!(
        "       I: receiver {}/60 frames, eavesdropper {}/60 frames",
        out.receiver.frames_ok.len(),
        out.eavesdropper.frames_ok.len()
    );
}
