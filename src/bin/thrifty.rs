//! `thrifty` — command-line front end for the CoNEXT 2013 reproduction.
//!
//! ```text
//! thrifty advise     --motion fast --gop 30 --device samsung --cipher aes256
//! thrifty predict    --motion slow --mode I [--percentiles]
//! thrifty experiment --motion fast --mode I+20%P [--tcp] [--trials 5]
//! thrifty help
//! ```
//!
//! The argument parser is deliberately hand-rolled (`--key value` pairs) to
//! keep the dependency set at the workspace's minimal footprint.

use std::collections::HashMap;
use std::process::ExitCode;

use thrifty::analytic::delay::DelayModel;
use thrifty::analytic::distortion::{DistortionModel, Observer};
use thrifty::analytic::params::{DeviceSpec, HTC_AMAZE_4G, SAMSUNG_GALAXY_S2};
use thrifty::analytic::policy::{EncryptionMode, Policy};
use thrifty::analytic::regression::SceneDistortion;
use thrifty::crypto::Algorithm;
use thrifty::energy::{PowerProfile, HTC_AMAZE_4G_POWER, SAMSUNG_GALAXY_S2_POWER};
use thrifty::sim::experiment::{Experiment, ExperimentConfig, Transport};
use thrifty::video::MotionLevel;
use thrifty::{PolicyAdvisor, PrivacyPreference};

const USAGE: &str = "\
thrifty — resource-thrifty secure mobile video transfers (CoNEXT'13 reproduction)

USAGE:
    thrifty <command> [--key value ...]

COMMANDS:
    advise       recommend the cheapest policy that blinds an eavesdropper
    predict      analytic delay + distortion for one policy
    experiment   run the simulated testbed for one policy
    lint         run the workspace invariant checker (thrifty-lint)
    help         print this text

COMMON OPTIONS (with defaults):
    --motion  slow|medium|fast     [fast]
    --gop     <frames>             [30]
    --device  samsung|htc          [samsung]
    --cipher  aes128|aes256|3des   [aes256]

COMMAND OPTIONS:
    advise:      --privacy none|balanced|full   [balanced]
    predict:     --mode none|I|P|all|I+<n>%P    [I]
                 --percentiles                  (adds p50/p95/p99)
                 --tcp                          (adds TCP retransmission latency)
    experiment:  --mode ... (as above) [I]
                 --trials <n> [5]  --frames <n> [150]  --tcp
    lint:        --json  --root <dir>  --tier <t>  --baseline <report.json>
                 --list-rules
";

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                // Value-less switches.
                if matches!(key, "percentiles" | "tcp") {
                    switches.push(key.to_string());
                    i += 1;
                    continue;
                }
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.insert(key.to_string(), value.clone());
                i += 2;
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { flags, switches })
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.into())
    }

    /// Reject options the command does not understand — a typo must fail
    /// loudly, not silently fall back to a default.
    fn expect_only(&self, command: &str, flags: &[&str], switches: &[&str]) -> Result<(), String> {
        let mut unknown: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !flags.contains(&k.as_str()))
            .cloned()
            .collect();
        unknown.extend(
            self.switches
                .iter()
                .filter(|s| !switches.contains(&s.as_str()))
                .cloned(),
        );
        unknown.sort();
        match unknown.first() {
            Some(key) => Err(format!("unknown option '--{key}' for '{command}'")),
            None => Ok(()),
        }
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn motion(&self) -> Result<MotionLevel, String> {
        match self.get("motion", "fast").to_ascii_lowercase().as_str() {
            "slow" | "low" => Ok(MotionLevel::Low),
            "medium" => Ok(MotionLevel::Medium),
            "fast" | "high" => Ok(MotionLevel::High),
            other => Err(format!("unknown motion '{other}'")),
        }
    }

    fn gop(&self) -> Result<usize, String> {
        self.get("gop", "30")
            .parse::<usize>()
            .ok()
            .filter(|&g| g >= 2)
            .ok_or_else(|| "GOP must be an integer >= 2".into())
    }

    fn device(&self) -> Result<(DeviceSpec, PowerProfile), String> {
        match self.get("device", "samsung").to_ascii_lowercase().as_str() {
            "samsung" | "s2" | "galaxy" => Ok((SAMSUNG_GALAXY_S2, SAMSUNG_GALAXY_S2_POWER)),
            "htc" | "amaze" => Ok((HTC_AMAZE_4G, HTC_AMAZE_4G_POWER)),
            other => Err(format!("unknown device '{other}' (samsung|htc)")),
        }
    }

    fn cipher(&self) -> Result<Algorithm, String> {
        match self.get("cipher", "aes256").to_ascii_lowercase().as_str() {
            "aes128" => Ok(Algorithm::Aes128),
            "aes256" => Ok(Algorithm::Aes256),
            "3des" | "tripledes" | "des3" => Ok(Algorithm::TripleDes),
            other => Err(format!("unknown cipher '{other}' (aes128|aes256|3des)")),
        }
    }

    fn mode(&self) -> Result<EncryptionMode, String> {
        self.get("mode", "I").parse().map_err(|e| format!("{e}"))
    }
}

fn advise(args: &Args) -> Result<(), String> {
    let motion = args.motion()?;
    let (device, _) = args.device()?;
    let advisor = PolicyAdvisor::calibrate(motion, args.gop()?, device, args.cipher()?);
    let preference = match args.get("privacy", "balanced").to_ascii_lowercase().as_str() {
        "none" => PrivacyPreference::NoPrivacy,
        "balanced" => PrivacyPreference::Balanced,
        "full" => PrivacyPreference::FullPrivacy,
        other => return Err(format!("unknown privacy '{other}' (none|balanced|full)")),
    };
    let r = advisor.recommend(preference);
    println!("policy:           {}", r.policy);
    println!("rationale:        {}", r.rationale);
    println!("delay:            {:.3} ms/packet", r.delay.mean_delay_s * 1e3);
    println!("eavesdropper:     {:.1} dB PSNR, MOS {:.2}", r.distortion.psnr_db, r.distortion.mos);
    println!("device power:     {:.2} W", r.power_w);
    println!("packets encrypted: {:.1}%", r.delay.encrypted_fraction * 100.0);
    Ok(())
}

fn predict(args: &Args) -> Result<(), String> {
    let motion = args.motion()?;
    let gop = args.gop()?;
    let (device, power) = args.device()?;
    let policy = Policy::new(args.cipher()?, args.mode()?);
    let params =
        thrifty::analytic::params::ScenarioParams::calibrated(motion, gop, device, 5, 0.92);
    let model = DelayModel::new(&params);
    let delay = if args.has("tcp") {
        model.predict_tcp(policy, 0.01)
    } else {
        model.predict(policy)
    }
    .map_err(|e| format!("{e}"))?;
    let scene = SceneDistortion::measure(motion, 60, 12, 11);
    let dist = DistortionModel::new(&params, &scene).predict(policy, Observer::Eavesdropper);
    let load = thrifty::energy::CryptoLoad::from_stream(
        &{
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            thrifty::video::encoder::StatisticalEncoder::new(motion, gop).encode(300, &mut rng)
        },
        policy,
    );
    println!("policy:        {policy}");
    println!("utilisation:   {:.3}", delay.rho);
    println!("mean delay:    {:.3} ms/packet", delay.mean_delay_s * 1e3);
    if args.has("percentiles") {
        let q = model
            .predict_percentiles(policy, &[0.5, 0.95, 0.99])
            .map_err(|e| format!("{e}"))?;
        println!(
            "percentiles:   p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            q[0] * 1e3,
            q[1] * 1e3,
            q[2] * 1e3
        );
    }
    println!("eavesdropper:  {:.1} dB PSNR, MOS {:.2}", dist.psnr_db, dist.mos);
    println!("device power:  {:.2} W", power.power_w(&load));
    Ok(())
}

fn experiment(args: &Args) -> Result<(), String> {
    let policy = Policy::new(args.cipher()?, args.mode()?);
    let mut cfg = ExperimentConfig::paper_cell(args.motion()?, args.gop()?, policy);
    let (device, power) = args.device()?;
    cfg.device = device;
    cfg.power = power;
    cfg.trials = args
        .get("trials", "5")
        .parse()
        .map_err(|_| "trials must be an integer".to_string())?;
    cfg.frames = args
        .get("frames", "150")
        .parse()
        .map_err(|_| "frames must be an integer".to_string())?;
    if args.has("tcp") {
        cfg.transport = Transport::HttpTcp;
    }
    let result = Experiment::prepare(cfg).run();
    println!("policy:        {policy}  ({} trials × {} frames)", cfg.trials, cfg.frames);
    println!("delay:         {:.3} ± {:.3} ms/packet", result.delay_s.mean * 1e3, result.delay_s.ci95 * 1e3);
    println!(
        "receiver:      {:.1} dB PSNR, MOS {:.2}",
        result.psnr_rx_db.mean, result.mos_rx.mean
    );
    println!(
        "eavesdropper:  {:.1} dB PSNR, MOS {:.2}",
        result.psnr_eve_db.mean, result.mos_eve.mean
    );
    println!("device power:  {:.2} W", result.power_w);
    println!("q (encrypted): {:.1}%", result.encrypted_fraction * 100.0);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `lint` has its own flag grammar (--json is a switch, --root takes a
    // value); hand the raw arguments straight to the checker.
    if command == "lint" {
        return ExitCode::from(thrifty_lint::run_cli(&argv[1..]));
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    const COMMON: [&str; 4] = ["motion", "gop", "device", "cipher"];
    fn with_common(extra: &[&'static str]) -> Vec<&'static str> {
        COMMON.iter().chain(extra).copied().collect()
    }
    let result = match command.as_str() {
        "advise" => args
            .expect_only("advise", &with_common(&["privacy"]), &[])
            .and_then(|()| advise(&args)),
        "predict" => args
            .expect_only("predict", &with_common(&["mode"]), &["percentiles", "tcp"])
            .and_then(|()| predict(&args)),
        "experiment" => args
            .expect_only(
                "experiment",
                &with_common(&["mode", "trials", "frames"]),
                &["tcp"],
            )
            .and_then(|()| experiment(&args)),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
