//! Root package: see `thrifty` for the public API.
#![forbid(unsafe_code)]

pub use thrifty::*;
