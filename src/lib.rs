//! Root package: see `thrifty` for the public API.
pub use thrifty::*;
