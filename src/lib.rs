//! Root package: see `thrifty` for the public API.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use thrifty::*;
