#!/usr/bin/env bash
# Regenerate the golden-vector snapshots under tests/golden/.
#
# Run this after an *intentional* change to any figure/table output, review
# the resulting JSON diff like code, and commit it together with the change.
# The regression test (tests/golden_figures.rs) compares at tolerance 0 —
# every number bit-identical — so an unreviewed diff here means an
# unexplained behaviour change somewhere in the pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_BLESS=1 cargo test --test golden_figures -- --nocapture
echo
echo "Blessed snapshots:"
git status --short tests/golden/ || true
