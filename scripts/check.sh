#!/usr/bin/env bash
# Full local gate: everything CI runs, in the order that fails fastest.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> thrifty-lint (workspace invariant checker; double --json run must be byte-identical)"
lint_tmp="$(mktemp -d)"
trap 'rm -rf "$lint_tmp"' EXIT
./target/release/thrifty-lint
./target/release/thrifty-lint --json > "$lint_tmp/lint_a.json"
./target/release/thrifty-lint --json > "$lint_tmp/lint_b.json"
cmp "$lint_tmp/lint_a.json" "$lint_tmp/lint_b.json"

echo "==> thrifty-lint call-graph tiers (taint, dataflow, locks, hygiene; double --json run must be byte-identical)"
# --tier restricts the report only — the call-graph analysis always runs in
# full — so a tier-filtered double run gates the determinism of the new
# tiers' fixpoints (taint distances, dataflow joins, lock-order witnesses)
# specifically.
./target/release/thrifty-lint --json --tier taint --tier dataflow --tier locks --tier hygiene > "$lint_tmp/tiers_a.json"
./target/release/thrifty-lint --json --tier taint --tier dataflow --tier locks --tier hygiene > "$lint_tmp/tiers_b.json"
cmp "$lint_tmp/tiers_a.json" "$lint_tmp/tiers_b.json"

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench -p thrifty-bench -- --test (smoke + backend ratio gates)"
# Besides smoke-running every bench, this executes the backend_ratio_gate:
# fast must beat reference for every algorithm, fast 3DES must hold a 4x
# lead, and batched bitsliced AES-128 (64-segment trains) must at least
# match the fast T-table backend. The committed BENCH_cipher.json pins the
# full >=2x bitsliced headline via its own unit test.
cargo bench -p thrifty-bench -- --test

echo "==> reproduce determinism (metered double run must be byte-identical)"
# Since the sender went zero-copy (pooled buffers, batched keystream
# trains), this byte-compare also proves the pool/train path end to end:
# any buffer reuse bug or train/sequential keystream divergence would show
# up as a diff between the two runs or against the golden figures below.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp" "$lint_tmp"' EXIT
./target/release/reproduce table2 fig12 --no-bench-json \
  --metrics "$tmp/metrics_a.json" > "$tmp/out_a.txt"
./target/release/reproduce table2 fig12 --no-bench-json \
  --metrics "$tmp/metrics_b.json" > "$tmp/out_b.txt"
cmp "$tmp/out_a.txt" "$tmp/out_b.txt"
cmp "$tmp/metrics_a.json" "$tmp/metrics_b.json"
./target/release/reproduce table2 fig12 --no-bench-json > "$tmp/out_plain.txt"
cmp "$tmp/out_a.txt" "$tmp/out_plain.txt"

echo "==> fault-matrix smoke sweep (zero panics/deadlocks, bounded wall-clock)"
# The binary exits non-zero on any guarantee violation (panic, deadlock,
# non-reproducible cell, faulty run beating its clean twin); `timeout`
# bounds a hung pipeline — a deadlock fails the gate as exit 124.
timeout 600 ./target/release/reproduce faults --no-bench-json > "$tmp/faults_a.txt"
timeout 600 ./target/release/reproduce faults --no-bench-json > "$tmp/faults_b.txt"
cmp "$tmp/faults_a.txt" "$tmp/faults_b.txt"

echo "==> fountain protocol-matrix smoke (self-verifying; double run must be byte-identical)"
# UDP vs TCP vs LT-fountain across three loss points and four policies.
# The binary exits non-zero on any self-check violation (a non-reproducible
# cell, ΔPSNR below the lossless twin, a reliable-transport frame loss, or
# the deep-fade goodput crossover failing to appear); `timeout` turns a
# peeling or retransmission hang into exit 124.
timeout 600 ./target/release/reproduce fountain --no-bench-json > "$tmp/fountain_a.txt"
timeout 600 ./target/release/reproduce fountain --no-bench-json > "$tmp/fountain_b.txt"
cmp "$tmp/fountain_a.txt" "$tmp/fountain_b.txt"

echo "==> chaos soak smoke (self-verifying; double run must be byte-identical)"
# Fault storms across all three transports with the recovery layer armed.
# The binary exits non-zero on any recover-gate violation (an unbounded
# recovery episode, a controller flap, adaptive-RTO goodput below the
# fixed-RTO baseline, a non-reproducible cell, or ΔPSNR regressing against
# the clean twin); `timeout` turns a resync or retransmission hang into
# exit 124.
timeout 600 ./target/release/reproduce chaos --quick --no-bench-json > "$tmp/chaos_a.txt"
timeout 600 ./target/release/reproduce chaos --quick --no-bench-json > "$tmp/chaos_b.txt"
cmp "$tmp/chaos_a.txt" "$tmp/chaos_b.txt"

echo "==> fleet --quick smoke gate (N=10^4 on the event calendar; hang fails as exit 124)"
# One 10^4-flow cell on the discrete-event scale path, self-verified
# (one event per packet, double-run bit-identity, physical delays).
# `timeout` turns a calendar or sharding hang into exit 124.
timeout 300 ./target/release/reproduce fleet --quick --no-bench-json > /dev/null

echo "==> fleet scaling sweep (self-verifying; deadlock fails as exit 124)"
# The sweep asserts its own guarantees and exits non-zero on violation:
# N=1 byte-identity with the single-sender path, same-seed metered runs
# bit-reproducible, 2-state/n-state solver agreement, and a solve-cache hit
# rate > 90% on the 100-flow cells. It then drives the event-calendar scale
# path to N=10^5; wall-clock numbers (events/sec, peak RSS) go only to
# BENCH_fleet.json (suppressed here), so the double-run stdout byte-compare
# below also gates the scale path's reproducibility at every N. `timeout`
# turns a sharding deadlock into exit 124.
timeout 600 ./target/release/reproduce fleet --no-bench-json > "$tmp/fleet_a.txt"
timeout 600 ./target/release/reproduce fleet --no-bench-json > "$tmp/fleet_b.txt"
cmp "$tmp/fleet_a.txt" "$tmp/fleet_b.txt"

echo "==> golden-vector regression suite (tolerance 0)"
cargo test --release --test golden_figures

echo "All checks passed."
