#!/usr/bin/env bash
# Full local gate: everything CI runs, in the order that fails fastest.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench -p thrifty-bench -- --test (smoke)"
cargo bench -p thrifty-bench -- --test

echo "All checks passed."
