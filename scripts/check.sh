#!/usr/bin/env bash
# Full local gate: everything CI runs, in the order that fails fastest.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench -p thrifty-bench -- --test (smoke)"
cargo bench -p thrifty-bench -- --test

echo "==> reproduce determinism (metered double run must be byte-identical)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/reproduce table2 fig12 --no-bench-json \
  --metrics "$tmp/metrics_a.json" > "$tmp/out_a.txt"
./target/release/reproduce table2 fig12 --no-bench-json \
  --metrics "$tmp/metrics_b.json" > "$tmp/out_b.txt"
cmp "$tmp/out_a.txt" "$tmp/out_b.txt"
cmp "$tmp/metrics_a.json" "$tmp/metrics_b.json"
./target/release/reproduce table2 fig12 --no-bench-json > "$tmp/out_plain.txt"
cmp "$tmp/out_a.txt" "$tmp/out_plain.txt"

echo "==> fault-matrix smoke sweep (zero panics/deadlocks, bounded wall-clock)"
# The binary exits non-zero on any guarantee violation (panic, deadlock,
# non-reproducible cell, faulty run beating its clean twin); `timeout`
# bounds a hung pipeline — a deadlock fails the gate as exit 124.
timeout 600 ./target/release/reproduce faults --no-bench-json > "$tmp/faults_a.txt"
timeout 600 ./target/release/reproduce faults --no-bench-json > "$tmp/faults_b.txt"
cmp "$tmp/faults_a.txt" "$tmp/faults_b.txt"

echo "All checks passed."
